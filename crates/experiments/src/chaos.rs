//! The chaos-soak harness: many seeded control-plane fault scenarios,
//! each checked against the sync-convergence oracle after quiescence.
//!
//! One scenario = one audited Home 1 capture under
//! [`FaultPlan::chaos`]: notification outages force poll fallback and
//! reconnect storms, metadata outages force offline queueing with
//! coalescing, degraded windows inject 5xx retries — and the driver
//! journals ground truth into a [`workload::SyncAudit`] as it renders.
//! After the run the read-only oracle ([`workload::oracle::check`])
//! verifies the DESIGN.md §9 invariants: reachability, no double-apply,
//! durability, queue drain, causality. A violation report carries the
//! scenario seed and the per-commit event trace needed to replay it
//! (`repro --chaos N` with the same knobs is a full reproduction).
//!
//! The soak also surfaces the emergent behaviour the paper could only
//! observe from the outside (§4.2's long-lived notification
//! connections): the fleet-wide reconnect storm after an outage ends,
//! and how far sync lag degrades versus a clean run.

use crate::report::{cdf_summary, cdfs_csv, Report, TextTable};
use simcore::stats::Ecdf;
use simcore::{par, SimTime};
use workload::{
    oracle, simulate_vantage_audited, FaultPlan, OutageKnobs, VantageConfig, VantageKind,
};

/// Scope and knobs of one soak run. The scenario shape is fixed (a
/// 7-day Home 1 capture at a small population scale) so soak results are
/// comparable across knob settings; only the fault plans vary.
pub struct SoakConfig {
    /// Number of scenarios; scenario `i` uses fault seed `base_seed + i`.
    pub seeds: u64,
    /// First fault seed.
    pub base_seed: u64,
    /// Population scale of each scenario's capture.
    pub scale: f64,
    /// Capture length in days (also the fault-plan horizon).
    pub days: u32,
    /// Storage-outage statistics (the `--outage-gap-days` /
    /// `--outage-secs` flags).
    pub knobs: OutageKnobs,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seeds: 32,
            base_seed: 1,
            scale: 0.01,
            days: 7,
            knobs: OutageKnobs::default(),
        }
    }
}

/// What one scenario contributed to the soak.
struct ScenarioOutcome {
    seed: u64,
    flows: usize,
    commits: u64,
    deferred: u64,
    reconnect_attempts: usize,
    reconnects: usize,
    fallback_polls: u64,
    sync_lags: Vec<f64>,
    /// Rendered violations, already prefixed with the seed.
    violations: Vec<String>,
    /// `(time, attempts, reconnects)` events for the storm series.
    storm: Vec<(SimTime, bool)>,
}

fn run_scenario(cfg: &SoakConfig, seed: u64) -> ScenarioOutcome {
    let mut config = VantageConfig::paper(VantageKind::Home1, cfg.scale);
    config.days = cfg.days;
    let faults = FaultPlan::chaos(seed, cfg.days, &cfg.knobs);
    let (out, audit) = simulate_vantage_audited(
        &config,
        dropbox::client::ClientVersion::V1_2_52,
        2012,
        &faults,
    );
    let violations = oracle::check(&audit)
        .iter()
        .map(|v| format!("seed {seed}: {}", v.render()))
        .collect();
    let mut storm: Vec<(SimTime, bool)> = Vec::new();
    storm.extend(
        audit
            .reconnect_attempt_events()
            .iter()
            .map(|&(t, _)| (t, false)),
    );
    storm.extend(audit.reconnect_events().iter().map(|&(t, _)| (t, true)));
    ScenarioOutcome {
        seed,
        flows: out.dataset.flows.len(),
        commits: audit.commit_count(),
        deferred: audit.commits().iter().filter(|c| c.deferred).count() as u64,
        reconnect_attempts: audit.reconnect_attempt_events().len(),
        reconnects: audit.reconnect_events().len(),
        fallback_polls: audit.fallback_poll_count(),
        sync_lags: audit.sync_lags_secs(),
        violations,
        storm,
    }
}

/// Sync-lag samples of the clean (zero-fault) twin of the soak's
/// scenario shape — the baseline the chaos CDF is compared against.
fn clean_lags(cfg: &SoakConfig) -> Vec<f64> {
    let mut config = VantageConfig::paper(VantageKind::Home1, cfg.scale);
    config.days = cfg.days;
    let (_, audit) = simulate_vantage_audited(
        &config,
        dropbox::client::ClientVersion::V1_2_52,
        2012,
        &FaultPlan::none(),
    );
    audit.sync_lags_secs()
}

/// Bucket the first scenario's reconnect events into 10-minute bins:
/// the reconnect-storm time series (`chaos_reconnect_storm.csv`).
fn storm_csv(storm: &[(SimTime, bool)]) -> String {
    const BIN: f64 = 600.0;
    let mut bins: std::collections::BTreeMap<u64, (u64, u64)> = std::collections::BTreeMap::new();
    for &(t, ok) in storm {
        let bin = (t.saturating_since(SimTime::EPOCH).as_secs_f64() / BIN) as u64;
        let e = bins.entry(bin).or_default();
        if ok {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    let mut out = String::from("t_hours,failed_probes,reconnects\n");
    for (bin, (fail, ok)) in bins {
        out.push_str(&format!("{:.3},{fail},{ok}\n", bin as f64 * BIN / 3_600.0));
    }
    out
}

/// Run the soak: `cfg.seeds` scenarios on up to `jobs` workers (scenario
/// order and output are independent of `jobs`), oracle-check each, and
/// render the report. The second return is the total violation count —
/// the harness's exit status.
pub fn chaos_soak(cfg: &SoakConfig, jobs: usize) -> (Report, usize) {
    let seeds: Vec<u64> = (0..cfg.seeds).map(|i| cfg.base_seed + i).collect();
    let outcomes = par::fork_join(jobs, &seeds, |_, &seed| run_scenario(cfg, seed));
    let baseline = clean_lags(cfg);

    let mut t = TextTable::new(vec![
        "seed",
        "flows",
        "commits",
        "deferred",
        "failed probes",
        "reconnects",
        "fallback polls",
        "violations",
    ]);
    let mut chaos_lags = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    for o in &outcomes {
        t.row(vec![
            o.seed.to_string(),
            o.flows.to_string(),
            o.commits.to_string(),
            o.deferred.to_string(),
            o.reconnect_attempts.to_string(),
            o.reconnects.to_string(),
            o.fallback_polls.to_string(),
            o.violations.len().to_string(),
        ]);
        chaos_lags.extend_from_slice(&o.sync_lags);
        violations.extend(o.violations.iter().cloned());
    }

    let clean_ecdf = Ecdf::new(baseline);
    let chaos_ecdf = Ecdf::new(chaos_lags);
    let mut body = t.render();
    body.push('\n');
    body.push_str(&cdf_summary(
        "sync lag, clean (s)",
        &clean_ecdf,
        &[(60.0, "within a minute")],
    ));
    body.push_str(&cdf_summary(
        "sync lag, chaos (s)",
        &chaos_ecdf,
        &[(60.0, "within a minute"), (3_600.0, "within an hour")],
    ));
    body.push_str(&format!(
        "\n{} scenarios (fault seeds {}..={}), outage knobs: one per ~{} days, \
         median {}s (cap {}s)\n",
        cfg.seeds,
        cfg.base_seed,
        cfg.base_seed + cfg.seeds.saturating_sub(1),
        cfg.knobs.gap_days,
        cfg.knobs.median_secs,
        cfg.knobs.max_secs,
    ));
    if violations.is_empty() {
        body.push_str("convergence oracle: PASS — every scenario converged\n");
    } else {
        body.push_str(&format!(
            "convergence oracle: FAIL — {} violation(s); replay with \
             `repro --chaos` and the listed seed\n",
            violations.len()
        ));
        for v in &violations {
            body.push_str(v);
            body.push('\n');
        }
    }

    let storm = outcomes
        .first()
        .map(|o| storm_csv(&o.storm))
        .unwrap_or_default();
    let n = violations.len();
    let report = Report::new(
        "chaos_soak",
        "Chaos soak: control-plane fault scenarios vs the convergence oracle",
        body,
    )
    .with_csv("chaos_soak.csv", t.csv())
    .with_csv("chaos_reconnect_storm.csv", storm)
    .with_csv(
        "chaos_sync_lag_cdf.csv",
        cdfs_csv(&[("clean", &clean_ecdf), ("chaos", &chaos_ecdf)], 400),
    );
    (report, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            seeds: 2,
            scale: 0.006,
            days: 5,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn tiny_soak_converges_and_sees_degraded_modes() {
        let (rep, violations) = chaos_soak(&tiny(), 2);
        assert_eq!(violations, 0, "{}", rep.body);
        assert!(
            rep.body.contains("convergence oracle: PASS"),
            "{}",
            rep.body
        );
        // The chaos plans must actually exercise the degraded modes: at
        // least one scenario reconnects and falls back to polling.
        let csv = &rep.artifacts[0].1;
        let any_nonzero = |col: usize| {
            csv.lines()
                .skip(1)
                .filter_map(|l| l.split(',').nth(col)?.parse::<u64>().ok())
                .any(|v| v > 0)
        };
        assert!(any_nonzero(4), "no failed probes:\n{csv}");
        assert!(any_nonzero(5), "no reconnects:\n{csv}");
        assert!(any_nonzero(6), "no fallback polls:\n{csv}");
        // Chaos lags the clean baseline at the tail.
        assert!(rep.body.contains("sync lag, chaos"));
    }

    #[test]
    fn soak_is_independent_of_worker_count() {
        let cfg = tiny();
        let (a, va) = chaos_soak(&cfg, 1);
        let (b, vb) = chaos_soak(&cfg, 2);
        assert_eq!(a.body, b.body);
        assert_eq!(a.artifacts, b.artifacts);
        assert_eq!(va, vb);
    }

    #[test]
    fn storm_series_buckets_events() {
        let csv = storm_csv(&[
            (SimTime::from_secs(10), false),
            (SimTime::from_secs(20), false),
            (SimTime::from_secs(30), true),
            (SimTime::from_secs(700), true),
        ]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_hours,failed_probes,reconnects");
        assert_eq!(lines[1], "0.000,2,1");
        assert_eq!(lines[2], "0.167,0,1");
    }
}

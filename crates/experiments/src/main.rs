//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [IDS...] [--scale S] [--seed N] [--jobs N] [--hh-shards K]
//!       [--out DIR] [--faults N] [--export-traces]
//!       [--chaos N] [--outage-gap-days G] [--outage-secs S]
//!       [--provider-matrix] [--access wired|wifi|lte]
//!
//!   IDS     table1..table5, fig1..fig21, validation, recommendations,
//!           or `all` (default)
//!   --scale population scale factor (default 0.1)
//!   --seed  simulation seed (default 2012)
//!   --jobs N          simulate the five captures on up to N worker
//!                     threads (0 = auto-detect, the default; 1 = strictly
//!                     serial). Changes wall-clock time only: artifacts
//!                     are byte-identical at every N
//!   --hh-shards K     cut each capture into up to K household-range
//!                     sub-shards (default 16); more shards = finer
//!                     load-balancing for high --jobs values. Changes
//!                     wall-clock time only: artifacts are byte-identical
//!                     at every K
//!   --out   output directory (default results/)
//!   --faults N        inject network/server faults from the lossy plan
//!                     seeded with N (default: fault-free)
//!   --chaos N         chaos-soak mode: run N seeded control-plane fault
//!                     scenarios (a compact 7-day Home 1 capture each)
//!                     and check the sync-convergence oracle on every one.
//!                     Writes `chaos_soak.txt` + CSVs to --out and exits
//!                     non-zero if any scenario violates an invariant.
//!                     No tables/figures are generated in this mode
//!   --outage-gap-days G  mean days between server-outage starts
//!                     (default 2; applies to --faults and --chaos plans)
//!   --outage-secs S   median outage duration in seconds (default 180;
//!                     the per-outage cap scales to at least 20×S)
//!   --export-traces   also write the anonymised flow logs (JSON-lines,
//!                     one file per vantage point — the counterpart of the
//!                     paper's published trace repository)
//!   --provider-matrix provider-matrix mode: run the Home 1 workload once
//!                     per provider spec (Dropbox, SkyDrive-like,
//!                     GDrive-like) and sweep the bundling-vs-RTT folder
//!                     harness. Writes `provider_matrix.txt` +
//!                     `provider_matrix_*.csv` + `provider_bundling_rtt.*`
//!                     to --out. No tables/figures in this mode
//!   --access P        force every household onto access-link profile P
//!                     (`wired` | `wifi` | `lte`) in provider-matrix mode
//! ```

use experiments::ablations;
use experiments::figures;
use experiments::recommendations;
use experiments::report::Report;
use experiments::run::run_capture_with_plan;
use experiments::tables;
use experiments::validation;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;
use workload::{FaultPlan, OutageKnobs, ShardPlan};

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = 0.1f64;
    let mut seed = 2012u64;
    let mut jobs = 0usize; // 0 = auto-detect
    let mut hh_shards = workload::shard::DEFAULT_SUB_SHARDS;
    let mut out_dir = PathBuf::from("results");
    let mut export_traces = false;
    let mut fault_seed: Option<u64> = None;
    let mut chaos_seeds: Option<u64> = None;
    let mut knobs = OutageKnobs::default();
    let mut provider_matrix = false;
    let mut access: Option<&'static tcpmodel::AccessLink> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale value").parse().expect("scale"),
            "--seed" => seed = args.next().expect("--seed value").parse().expect("seed"),
            "--jobs" => jobs = args.next().expect("--jobs value").parse().expect("jobs"),
            "--hh-shards" => {
                hh_shards = args
                    .next()
                    .expect("--hh-shards value")
                    .parse::<usize>()
                    .expect("hh-shards")
                    .max(1)
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out value")),
            "--export-traces" => export_traces = true,
            "--faults" => {
                fault_seed = Some(
                    args.next()
                        .expect("--faults value")
                        .parse()
                        .expect("fault seed"),
                )
            }
            "--chaos" => {
                chaos_seeds = Some(
                    args.next()
                        .expect("--chaos value")
                        .parse()
                        .expect("chaos seed count"),
                )
            }
            "--outage-gap-days" => {
                knobs.gap_days = args
                    .next()
                    .expect("--outage-gap-days value")
                    .parse()
                    .expect("gap days")
            }
            "--outage-secs" => {
                let secs: f64 = args
                    .next()
                    .expect("--outage-secs value")
                    .parse()
                    .expect("outage secs");
                knobs.median_secs = secs;
                knobs.max_secs = knobs.max_secs.max(20.0 * secs);
            }
            "--provider-matrix" => provider_matrix = true,
            "--access" => {
                let name = args.next().expect("--access value");
                access = Some(
                    tcpmodel::AccessLink::by_name(&name)
                        .unwrap_or_else(|| panic!("unknown access profile `{name}`")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [IDS...] [--scale S] [--seed N] [--jobs N] [--hh-shards K] [--out DIR] [--faults N] [--export-traces] [--chaos N] [--outage-gap-days G] [--outage-secs S] [--provider-matrix] [--access wired|wifi|lte]"
                );
                return;
            }
            "--list" => {
                println!("table1 table2 table3 table4 table5");
                println!("fig1 fig2 … fig21 (no fig19 capture needed: fig1, fig19)");
                println!("validation recommendations ablations all");
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = vec!["all".into()];
    }
    let want = |id: &str| ids[0] == "all" || ids.iter().any(|i| i == id);

    fs::create_dir_all(&out_dir).expect("create output directory");

    // Provider-matrix mode is its own pipeline: per-spec captures + the
    // bundling-vs-RTT sweep, no tables/figures.
    if provider_matrix {
        let resolved_jobs = if jobs == 0 {
            simcore::par::available_jobs()
        } else {
            jobs
        };
        let cfg = experiments::providers::MatrixConfig {
            scale,
            seed,
            link: access,
            ..experiments::providers::MatrixConfig::default()
        };
        eprintln!(
            "provider matrix: {} specs x {}-day Home 1 capture (scale {scale}, seed {seed}, jobs {resolved_jobs}{})…",
            dropbox::spec::ALL.len(),
            cfg.days,
            match access {
                Some(l) => format!(", access {}", l.name),
                None => String::new(),
            }
        );
        let t0 = Instant::now();
        let reports = [
            experiments::providers::provider_matrix(&cfg, resolved_jobs),
            experiments::providers::bundling_vs_rtt(seed),
        ];
        eprintln!("matrix finished in {:.1}s", t0.elapsed().as_secs_f64());
        for rep in &reports {
            println!("{}", rep.render());
            fs::write(out_dir.join(format!("{}.txt", rep.id)), rep.render()).expect("write report");
            for (name, contents) in &rep.artifacts {
                fs::write(out_dir.join(name), contents).expect("write artifact");
            }
        }
        return;
    }

    // Chaos-soak mode is its own pipeline: scenarios + oracle, no
    // tables/figures, non-zero exit on any convergence violation.
    if let Some(seeds) = chaos_seeds {
        let cfg = experiments::chaos::SoakConfig {
            seeds,
            knobs,
            ..experiments::chaos::SoakConfig::default()
        };
        let resolved_jobs = if jobs == 0 {
            simcore::par::available_jobs()
        } else {
            jobs
        };
        eprintln!(
            "chaos soak: {seeds} scenario(s) (scale {}, {} days each, jobs {resolved_jobs})…",
            cfg.scale, cfg.days
        );
        let t0 = Instant::now();
        let (rep, violations) = experiments::chaos::chaos_soak(&cfg, resolved_jobs);
        eprintln!("soak finished in {:.1}s", t0.elapsed().as_secs_f64());
        println!("{}", rep.render());
        fs::write(out_dir.join(format!("{}.txt", rep.id)), rep.render()).expect("write report");
        for (name, contents) in &rep.artifacts {
            fs::write(out_dir.join(name), contents).expect("write artifact");
        }
        if violations > 0 {
            eprintln!("chaos soak FAILED: {violations} convergence violation(s)");
            std::process::exit(1);
        }
        eprintln!("chaos soak passed: {seeds} scenario(s), zero violations");
        return;
    }

    let mut reports: Vec<Report> = Vec::new();

    // Standalone testbed figures need no capture.
    if want("fig1") {
        reports.push(figures::fig1());
    }
    if want("fig19") {
        reports.push(figures::fig19());
    }
    if want("table1") {
        reports.push(tables::table1());
    }
    if want("recommendations") {
        reports.push(recommendations::recommendations());
    }
    if want("ablations") {
        reports.extend(ablations::all());
    }

    let needs_capture = ids[0] == "all"
        || ids.iter().any(|i| {
            !matches!(
                i.as_str(),
                "fig1" | "fig19" | "table1" | "recommendations" | "ablations"
            )
        });
    if needs_capture {
        let plan = match fault_seed {
            // The longest capture is the 42-day Mar–May window; the plan's
            // outage schedule covers it entirely. With default knobs this
            // is draw-for-draw the historical lossy plan.
            Some(fs) => FaultPlan::lossy_tuned(fs, 42, &knobs),
            None => FaultPlan::none(),
        };
        let resolved_jobs = if jobs == 0 {
            simcore::par::available_jobs()
        } else {
            jobs
        };
        eprintln!(
            "simulating 4 vantage points + the Jun/Jul re-capture (scale {scale}, seed {seed}, jobs {resolved_jobs}{})…",
            match fault_seed {
                Some(fs) => format!(", fault seed {fs}"),
                None => String::new(),
            }
        );
        let t0 = Instant::now();
        let shard_plan = ShardPlan::paper().with_sub_shards(hh_shards);
        let cap = run_capture_with_plan(&shard_plan, scale, seed, &plan, resolved_jobs);
        eprintln!("simulation finished in {:.1}s", t0.elapsed().as_secs_f64());
        let total_flows: usize = cap.vantages.iter().map(|v| v.dataset.flows.len()).sum();
        eprintln!("flow records: {total_flows}");
        // One pass over every record feeds all analyses (tables + figures).
        let t1 = Instant::now();
        let summary = experiments::CaptureSummary::compute(&cap);
        eprintln!(
            "summary pass: {} records through {} accumulator stages in {:.1}s \
             (peak accumulator state {} kB)",
            summary.records(),
            summary.stages(),
            t1.elapsed().as_secs_f64(),
            summary.state_bytes() / 1024
        );
        if plan.is_active() {
            let mut stats = workload::FaultStats::default();
            for out in cap.vantages.iter().chain(std::iter::once(&cap.campus1_v14)) {
                stats.sync_retries += out.fault_stats.sync_retries;
                stats.aborted_flows += out.fault_stats.aborted_flows;
                stats.notify_aborts += out.fault_stats.notify_aborts;
            }
            eprintln!(
                "injected faults: {} sync retries, {} aborted transfers, {} notification aborts",
                stats.sync_retries, stats.aborted_flows, stats.notify_aborts
            );
        }

        // Figures/tables are pure renderers over the summary; only the
        // truth-scoring validation still needs the capture itself.
        type Gen = Box<dyn Fn(&experiments::Capture, &experiments::CaptureSummary) -> Report>;
        let gens: Vec<(&str, Gen)> = vec![
            ("table2", Box::new(|_, s| tables::table2(s))),
            ("table3", Box::new(|_, s| tables::table3(s))),
            ("table4", Box::new(|_, s| tables::table4(s))),
            ("table5", Box::new(|_, s| tables::table5_report(s))),
            ("fig2", Box::new(|_, s| figures::fig2(s))),
            ("fig3", Box::new(|_, s| figures::fig3(s))),
            ("fig4", Box::new(|_, s| figures::fig4(s))),
            ("fig5", Box::new(|_, s| figures::fig5(s))),
            ("fig6", Box::new(|_, s| figures::fig6(s))),
            ("fig7", Box::new(|_, s| figures::fig7(s))),
            ("fig8", Box::new(|_, s| figures::fig8(s))),
            ("fig9", Box::new(|_, s| figures::fig9(s))),
            ("fig10", Box::new(|_, s| figures::fig10(s))),
            ("fig11", Box::new(|_, s| figures::fig11(s))),
            ("fig12", Box::new(|_, s| figures::fig12(s))),
            ("fig13", Box::new(|_, s| figures::fig13(s))),
            ("fig14", Box::new(|_, s| figures::fig14(s))),
            ("fig15", Box::new(|_, s| figures::fig15(s))),
            ("fig16", Box::new(|_, s| figures::fig16(s))),
            ("fig17", Box::new(|_, s| figures::fig17(s))),
            ("fig18", Box::new(|_, s| figures::fig18(s))),
            ("fig20", Box::new(|_, s| figures::fig20(s))),
            ("fig21", Box::new(|_, s| figures::fig21(s))),
            ("validation", Box::new(|c, _| validation::validate(c))),
        ];
        for (id, gen) in gens {
            if want(id) {
                reports.push(gen(&cap, &summary));
            }
        }

        if export_traces {
            for out in &cap.vantages {
                let name = out.dataset.name.to_lowercase().replace(' ', "");
                let path = out_dir.join(format!("traces_{name}.jsonl"));
                // simlint: allow(full-materialize) — export needs an owned copy to anonymise
                let mut flows = out.dataset.flows.clone();
                nettrace::flowlog::anonymise_clients(&mut flows);
                let file = fs::File::create(&path).expect("create trace export");
                nettrace::flowlog::write_jsonl(std::io::BufWriter::new(file), &flows)
                    .expect("write trace export");
                eprintln!("exported {} flows to {}", flows.len(), path.display());
            }
        }
    }

    let mut index = String::from(
        "# results index\n\ngenerated by `repro`; see EXPERIMENTS.md for paper-vs-measured.\n\n",
    );
    index.push_str(&format!(
        "run parameters: scale {scale}, seed {seed} (five captures in per-household \
         sub-shards; byte-identical at every `--jobs` and `--hh-shards` value)\n\n\
         | report | title | artifacts |\n|---|---|---|\n"
    ));
    for rep in &reports {
        println!("{}", rep.render());
        let path = out_dir.join(format!("{}.txt", rep.id));
        fs::write(&path, rep.render()).expect("write report");
        for (name, contents) in &rep.artifacts {
            fs::write(out_dir.join(name), contents).expect("write artifact");
        }
        let artifacts: Vec<&str> = rep.artifacts.iter().map(|(n, _)| n.as_str()).collect();
        index.push_str(&format!(
            "| [{id}.txt]({id}.txt) | {title} | {arts} |\n",
            id = rep.id,
            title = rep.title,
            arts = artifacts.join(", ")
        ));
    }
    index.push_str(
        "\nBenchmark artifacts (written by `cargo bench -p bench`, not by `repro`):\n\
         `BENCH_parallel.json` (serial-vs-parallel capture speedup; see EXPERIMENTS.md),\n\
         `BENCH_stream.json` (single-pass summary throughput and accumulator state),\n\
         `BENCH_faults.json`, `BENCH_simlint.json`, `BENCH_chaos.json` (chaos-soak\n\
         scenarios/sec), `BENCH_providers.json` (per-spec upload-transaction\n\
         throughput), and the substrate/figures/tables benches, all under\n\
         `crates/bench/`.\n\n\
         Provider-matrix artifacts (written by `repro --provider-matrix`, not by\n\
         the default run): `provider_matrix.txt`, `provider_matrix_cdf.csv`,\n\
         `provider_matrix_volume.csv`, `provider_bundling_rtt.txt/.csv`.\n",
    );
    fs::write(out_dir.join("INDEX.md"), index).expect("write index");
    eprintln!("wrote {} reports to {}", reports.len(), out_dir.display());
}

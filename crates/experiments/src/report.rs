//! Report plumbing: aligned text tables and CSV artifacts.

use simcore::stats::Ecdf;

/// One regenerated table or figure.
pub struct Report {
    /// Identifier (`table4`, `fig9`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Formatted text body (what the paper's table/plot shows).
    pub body: String,
    /// CSV artifacts: (file name, contents).
    pub artifacts: Vec<(String, String)>,
}

impl Report {
    /// New report with no artifacts yet.
    pub fn new(id: &'static str, title: &'static str, body: String) -> Self {
        Report {
            id,
            title,
            body,
            artifacts: Vec::new(),
        }
    }

    /// Attach a CSV artifact.
    pub fn with_csv(mut self, name: impl Into<String>, contents: String) -> Self {
        self.artifacts.push((name.into(), contents));
        self
    }

    /// Render header + body.
    pub fn render(&self) -> String {
        format!(
            "== {} — {} ==\n{}\n",
            self.id.to_uppercase(),
            self.title,
            self.body
        )
    }
}

/// Format a byte count with a binary-ish human unit (paper uses GB/MB).
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e12 {
        format!("{:.2}TB", b / 1e12)
    } else if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2}kB", b / 1e3)
    } else {
        format!("{bytes}B")
    }
}

/// Format a rate in bits/s.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e6 {
        format!("{:.2}Mbit/s", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.2}kbit/s", bps / 1e3)
    } else {
        format!("{bps:.0}bit/s")
    }
}

/// A simple aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Render one or more labelled CDFs as CSV (`x,label1,label2…` would need
/// alignment; instead emit long form: `label,x,F`).
pub fn cdfs_csv(cdfs: &[(&str, &Ecdf)], max_points: usize) -> String {
    let mut out = String::from("series,x,F\n");
    for (label, ecdf) in cdfs {
        for (x, f) in ecdf.points(max_points) {
            out.push_str(&format!("{label},{x},{f:.6}\n"));
        }
    }
    out
}

/// Summarise a CDF at the reference probes the paper quotes.
pub fn cdf_summary(label: &str, ecdf: &Ecdf, probes: &[(f64, &str)]) -> String {
    if ecdf.is_empty() {
        return format!("{label}: (no samples)\n");
    }
    // Type-7 quantiles on purpose: these lines mirror what the paper's
    // plotting stack reports, which interpolates between order statistics
    // (`Ecdf::inverse_cdf` is the sample-valued alternative).
    let mut out = format!(
        "{label}: n={} median={:.3} p10={:.3} p90={:.3} mean={:.3}\n",
        ecdf.len(),
        ecdf.quantile(0.5).unwrap_or(0.0),
        ecdf.quantile(0.1).unwrap_or(0.0),
        ecdf.quantile(0.9).unwrap_or(0.0),
        ecdf.mean(),
    );
    for &(x, note) in probes {
        out.push_str(&format!(
            "    F({x}) = {:.3}   {note}\n",
            ecdf.fraction_le(x)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2_500), "2.50kB");
        assert_eq!(fmt_bytes(3_624_000_000_000), "3.62TB");
    }

    #[test]
    fn table_alignment_and_csv() {
        let mut t = TextTable::new(vec!["Name", "Vol"]);
        t.row(vec!["Campus 1", "146GB"]);
        t.row(vec!["Home 1", "1.15TB"]);
        let text = t.render();
        assert!(text.contains("Campus 1  146GB"));
        let csv = t.csv();
        assert!(csv.starts_with("Name,Vol\n"));
        assert!(csv.contains("Home 1,1.15TB"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn cdf_summary_mentions_probes() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let s = cdf_summary("sizes", &e, &[(50.0, "half")]);
        assert!(s.contains("F(50) = 0.500"));
    }
}

//! Figures 1–21.
//!
//! Capture-driven figures render from a [`CaptureSummary`] — the
//! single-pass accumulator outputs of `summary` — instead of re-scanning
//! the flow vectors once per figure. Figs. 1 and 19 are testbed
//! reconstructions and need no capture.

use crate::chart::{bar_chart, cdf_chart};
use crate::report::{cdf_summary, cdfs_csv, fmt_bps, fmt_bytes, Report, TextTable};
use crate::summary::{fig10_bins, fig9_theta, CaptureSummary};
use dnssim::DnsDirectory;
use dropbox::client::{ChunkWork, SyncConfig, SyncEngine};
use dropbox::content::ChunkId;
use dropbox::protocol::ProtocolTrace;
use dropbox::storage::ChunkStore;
use dropbox_analysis::chunks::ChunkGroup;
use dropbox_analysis::classify::{DropboxRole, Provider, StorageTag};
use simcore::rng::fnv1a;
use simcore::stats::{Ecdf, LogBins};
use simcore::time::CaptureCalendar;
use simcore::{Rng, SimDuration, SimTime};
use workload::VantageKind;

/// Fig. 1: the protocol message ladder of a commit, from the testbed.
pub fn fig1() -> Report {
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), 7);
    let mut rng = Rng::new(1);
    let mut trace = ProtocolTrace::new();
    // Session start precedes the commit (Fig. 1's first two arrows).
    trace.record(
        SimTime::EPOCH,
        dropbox::protocol::Sender::Client,
        dropbox::protocol::Command::RegisterHost,
    );
    trace.record(
        SimTime::EPOCH,
        dropbox::protocol::Sender::Client,
        dropbox::protocol::Command::List,
    );
    let chunks: Vec<ChunkWork> = (0..3)
        .map(|i| ChunkWork {
            id: ChunkId(0xF00 + i),
            wire_bytes: 150_000,
            raw_bytes: 200_000,
        })
        .collect();
    engine.upload_transaction(&chunks, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
    let body = format!(
        "observed message ladder (client -> / server <-):\n{trace}\nladder: {:?}\n",
        trace.ladder()
    );
    Report::new("fig1", "Dropbox commit protocol (testbed trace)", body)
}

/// Fig. 2: popularity of cloud storage in Home 1 (IP addresses and volume
/// per day).
pub fn fig2(sum: &CaptureSummary) -> Report {
    let v = sum.vantage(VantageKind::Home1);
    let series = v
        .provider_series
        .as_ref()
        .expect("Home 1 summary tracks the provider series");
    let mut t = TextTable::new(vec![
        "day", "date", "DB ips", "iC ips", "SD ips", "GD ips", "DB vol", "iC vol", "SD vol",
        "GD vol",
    ]);
    let get = |p: Provider, d: usize| -> (usize, u64) {
        series
            .get(&p)
            .and_then(|v| v.get(d))
            .map(|pd| (pd.ip_addrs, pd.bytes))
            .unwrap_or((0, 0))
    };
    for d in 0..v.days as usize {
        let (db_i, db_v) = get(Provider::Dropbox, d);
        let (ic_i, ic_v) = get(Provider::ICloud, d);
        let (sd_i, sd_v) = get(Provider::SkyDrive, d);
        let (gd_i, gd_v) = get(Provider::GoogleDrive, d);
        t.row(vec![
            d.to_string(),
            CaptureCalendar::date_label(d as u32),
            db_i.to_string(),
            ic_i.to_string(),
            sd_i.to_string(),
            gd_i.to_string(),
            fmt_bytes(db_v),
            fmt_bytes(ic_v),
            fmt_bytes(sd_v),
            fmt_bytes(gd_v),
        ]);
    }
    // Headline checks the paper makes.
    let sum_p = |p: Provider| -> (usize, u64) {
        let v = series.get(&p).cloned().unwrap_or_default();
        (
            v.iter().map(|d| d.ip_addrs).max().unwrap_or(0),
            v.iter().map(|d| d.bytes).sum(),
        )
    };
    let (ic_max, ic_vol) = sum_p(Provider::ICloud);
    let (db_max, db_vol) = sum_p(Provider::Dropbox);
    let gd = series
        .get(&Provider::GoogleDrive)
        .cloned()
        .unwrap_or_default();
    let gd_first = gd.iter().position(|d| d.ip_addrs > 0);
    let mut body = t.render();
    body.push_str(&format!(
        "\niCloud peak households {ic_max} vs Dropbox {db_max} (iCloud more devices)\n\
         Dropbox volume {} vs iCloud {} ({}x; paper: one order of magnitude)\n\
         Google Drive first seen on day {:?} (launch = day 31, 04-24)\n",
        fmt_bytes(db_vol),
        fmt_bytes(ic_vol),
        db_vol / ic_vol.max(1),
        gd_first
    ));
    Report::new("fig2", "Popularity of cloud storage in Home 1", body).with_csv("fig2.csv", t.csv())
}

/// Fig. 3: Dropbox and YouTube share of the total volume in Campus 2.
pub fn fig3(sum: &CaptureSummary) -> Report {
    let v = sum.vantage(VantageKind::Campus2);
    let total = v.daily_total.as_ref().expect("Campus 2 daily totals");
    let db = v.daily_dropbox.as_ref().expect("Campus 2 daily Dropbox");
    let yt = v.daily_youtube.as_ref().expect("Campus 2 daily YouTube");
    let mut t = TextTable::new(vec!["day", "date", "Dropbox share", "YouTube share"]);
    for d in 0..v.days as usize {
        let tot = total[d].max(1) as f64;
        t.row(vec![
            d.to_string(),
            CaptureCalendar::date_label(d as u32),
            format!("{:.3}", db[d] as f64 / tot),
            format!("{:.3}", yt[d] as f64 / tot),
        ]);
    }
    let db_sum: u64 = db.iter().sum();
    let yt_sum: u64 = yt.iter().sum();
    let tot_sum: u64 = total.iter().sum();
    let mut body = t.render();
    body.push_str(&format!(
        "\noverall: Dropbox {:.1}% of all traffic; Dropbox/YouTube = {:.2} (paper: ~4%, ~1/3)\n",
        100.0 * db_sum as f64 / tot_sum as f64,
        db_sum as f64 / yt_sum.max(1) as f64
    ));
    Report::new("fig3", "YouTube and Dropbox in Campus 2", body).with_csv("fig3.csv", t.csv())
}

/// Fig. 4: traffic share of Dropbox server roles.
pub fn fig4(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec![
        "Role", "C1 bytes", "C2 bytes", "H1 bytes", "H2 bytes", "C1 flows", "C2 flows", "H1 flows",
        "H2 flows",
    ]);
    let breakdowns: Vec<_> = sum.vantages.iter().map(|v| &v.role_breakdown).collect();
    for role in DropboxRole::ALL {
        let mut cells = vec![role.label().to_string()];
        for b in &breakdowns {
            cells.push(format!("{:.3}", b[role.label()].bytes_frac));
        }
        for b in &breakdowns {
            cells.push(format!("{:.3}", b[role.label()].flows_frac));
        }
        t.row(cells);
    }
    let mut body = t.render();
    let storage_bytes: f64 = breakdowns
        .iter()
        .map(|b| b["Client (storage)"].bytes_frac)
        .fold(f64::INFINITY, f64::min);
    let control_flows: f64 = breakdowns
        .iter()
        .map(|b| {
            b["Client (control)"].flows_frac
                + b["Notify (control)"].flows_frac
                + b["Web (control)"].flows_frac
        })
        .fold(f64::INFINITY, f64::min);
    body.push_str(&format!(
        "\nclient-storage bytes share ≥ {storage_bytes:.2} everywhere (paper: >0.80)\n\
         control flow share ≥ {control_flows:.2} everywhere (paper: >0.80)\n"
    ));
    Report::new("fig4", "Traffic share of Dropbox servers", body).with_csv("fig4.csv", t.csv())
}

/// Fig. 5: number of contacted storage servers per day.
pub fn fig5(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec!["day", "Campus 1", "Campus 2", "Home 1", "Home 2"]);
    let series: Vec<&Vec<usize>> = sum.vantages.iter().map(|v| &v.storage_servers).collect();
    let days = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for d in 0..days {
        t.row(vec![
            d.to_string(),
            series[0].get(d).copied().unwrap_or(0).to_string(),
            series[1].get(d).copied().unwrap_or(0).to_string(),
            series[2].get(d).copied().unwrap_or(0).to_string(),
            series[3].get(d).copied().unwrap_or(0).to_string(),
        ]);
    }
    let mut body = t.render();
    let maxes: Vec<usize> = series
        .iter()
        .map(|s| s.iter().copied().max().unwrap_or(0))
        .collect();
    body.push_str(&format!(
        "\ndaily maxima: C1={} C2={} H1={} H2={} (larger populations reach more of the \
         {}-address pool)\n",
        maxes[0],
        maxes[1],
        maxes[2],
        maxes[3],
        DnsDirectory::new().storage_pool_size()
    ));
    Report::new("fig5", "Number of contacted storage servers", body).with_csv("fig5.csv", t.csv())
}

/// Fig. 6: distribution of minimum RTT of storage and control flows
/// (flows with ≥ 10 RTT samples).
pub fn fig6(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut all_cdfs: Vec<(String, Ecdf)> = Vec::new();
    for v in &sum.vantages {
        for (plane, rtts) in [("storage", &v.rtt.storage), ("control", &v.rtt.control)] {
            let e = Ecdf::new(rtts.clone());
            body.push_str(&cdf_summary(
                &format!("{} {plane} RTT (ms)", v.name),
                &e,
                &[],
            ));
            all_cdfs.push((format!("{}-{plane}", v.name), e));
        }
    }
    body.push_str(
        "\nexpected shape: storage RTTs in the 80–120 ms band, control in 140–220 ms,\n\
         storage < control at every vantage point (single US data-center per plane)\n\n",
    );
    let refs: Vec<(&str, &Ecdf)> = all_cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    let storage_refs: Vec<(&str, &Ecdf)> = refs
        .iter()
        .filter(|(l, _)| l.ends_with("storage"))
        .cloned()
        .collect();
    let control_refs: Vec<(&str, &Ecdf)> = refs
        .iter()
        .filter(|(l, _)| l.ends_with("control"))
        .cloned()
        .collect();
    body.push_str("storage plane:\n");
    body.push_str(&cdf_chart(&storage_refs, 72, 12));
    body.push_str("\ncontrol plane:\n");
    body.push_str(&cdf_chart(&control_refs, 72, 12));
    Report::new("fig6", "Minimum RTT of storage and control flows", body)
        .with_csv("fig6.csv", cdfs_csv(&refs, 200))
}

/// Fig. 7: TCP flow sizes of client storage, store vs retrieve.
pub fn fig7(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut all_cdfs: Vec<(String, Ecdf)> = Vec::new();
    for v in &sum.vantages {
        for tag in [StorageTag::Store, StorageTag::Retrieve] {
            let e = Ecdf::new(v.storage.tag(tag).sizes.clone());
            body.push_str(&cdf_summary(
                &format!("{} {tag:?} flow size (B)", v.name),
                &e,
                &[
                    (10_000.0, "≤10 kB (paper: up to 40%)"),
                    (100_000.0, "≤100 kB (paper: 40–80%)"),
                ],
            ));
            all_cdfs.push((format!("{}-{tag:?}", v.name), e));
        }
    }
    body.push_str(
        "\nexpected: minimum ≈4 kB (SSL handshakes), maximum ≈400 MB (100 × 4 MB),\n\
         retrieve stochastically larger than store; Home 2 store biased to 4 MB\n\n",
    );
    let refs: Vec<(&str, &Ecdf)> = all_cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    let chart_refs: Vec<(&str, &Ecdf)> = refs
        .iter()
        .filter(|(l, _)| l.starts_with("Campus 2") || l.starts_with("Home 2"))
        .cloned()
        .collect();
    body.push_str(&cdf_chart(&chart_refs, 72, 14));
    Report::new("fig7", "Flow sizes of file storage (client)", body)
        .with_csv("fig7.csv", cdfs_csv(&refs, 300))
}

/// Fig. 8: estimated number of chunks per storage flow.
pub fn fig8(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut all_cdfs: Vec<(String, Ecdf)> = Vec::new();
    for v in &sum.vantages {
        for tag in [StorageTag::Store, StorageTag::Retrieve] {
            let e = Ecdf::new(v.storage.tag(tag).chunks.clone());
            body.push_str(&cdf_summary(
                &format!("{} {tag:?} chunks/flow", v.name),
                &e,
                &[(10.0, "≤10 chunks (paper: >80%)")],
            ));
            all_cdfs.push((format!("{}-{tag:?}", v.name), e));
        }
    }
    let refs: Vec<(&str, &Ecdf)> = all_cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    Report::new("fig8", "Estimated chunks per TCP flow", body)
        .with_csv("fig8.csv", cdfs_csv(&refs, 120))
}

/// How aggressively the Fig. 9 scatter artifact is thinned: one row in
/// `FIG9_DECIMATION` survives.
pub const FIG9_DECIMATION: usize = 16;

/// Figs. 9(a)/(b): throughput of storage flows in Campus 2, with the θ
/// slow-start bound.
///
/// The full scatter grows linearly with the capture (88k rows at scale
/// 1.0), so the committed artifact keeps every [`FIG9_DECIMATION`]-th row
/// plus a header comment carrying the row count and the FNV-1a digest of
/// the full CSV — enough to verify a regeneration bit-exactly.
pub fn fig9(sum: &CaptureSummary) -> Report {
    let v = sum.vantage(VantageKind::Campus2);
    let d = v.fig9.as_ref().expect("Campus 2 summary tracks Fig. 9");
    let theta = fig9_theta();
    let mut body = String::new();
    for (tag, t) in [
        (StorageTag::Store, &d.store),
        (StorageTag::Retrieve, &d.retrieve),
    ] {
        let avg = t.thr_sum / t.n.max(1) as f64;
        body.push_str(&format!(
            "{tag:?}: n={} average throughput {} (paper: store 462 kbit/s, \
             retrieve 797 kbit/s), max {}, flows above θ: {:.1}%\n",
            t.n,
            fmt_bps(avg),
            fmt_bps(t.thr_max),
            100.0 * t.above_theta as f64 / t.n.max(1) as f64
        ));
    }
    // The committed scatter: decimated rows + full-CSV fingerprint.
    let header = "tag,bytes,throughput_bps,chunks,group\n";
    let full = format!("{header}{}{}", d.store.rows, d.retrieve.rows);
    let digest = fnv1a(full.as_bytes());
    let n_rows = full.lines().count() - 1;
    let mut scatter = format!(
        "# full scatter: {n_rows} rows, fnv1a64 {digest:#018x}, keeping every \
         {FIG9_DECIMATION}th row\n{header}"
    );
    for (i, line) in full.lines().skip(1).enumerate() {
        if i % FIG9_DECIMATION == 0 {
            scatter.push_str(line);
            scatter.push('\n');
        }
    }
    body.push_str(&format!(
        "\nscatter: {n_rows} rows, full-CSV fnv1a64 {digest:#018x} \
         (fig9_scatter.csv keeps every {FIG9_DECIMATION}th row)\n"
    ));
    // The θ reference curve.
    let mut theta_csv = String::from("bytes,theta_bps\n");
    let bins = LogBins::new(256.0, 400e6, 60);
    for i in 0..bins.len() {
        let b = bins.center(i);
        theta_csv.push_str(&format!("{:.0},{:.0}\n", b, theta.theta_bps(b as u64)));
    }
    body.push_str(
        "\nexpected shape: remarkably low throughput; upper envelope tracks θ;\n\
         flows with many chunks concentrate at the bottom for any size\n",
    );
    Report::new("fig9", "Throughput of storage flows in Campus 2", body)
        .with_csv("fig9_scatter.csv", scatter)
        .with_csv("fig9_theta.csv", theta_csv)
}

/// Fig. 10: minimum flow duration vs size by chunk group (Campus 2).
pub fn fig10(sum: &CaptureSummary) -> Report {
    let v = sum.vantage(VantageKind::Campus2);
    let data = v.fig10.as_ref().expect("Campus 2 summary tracks Fig. 10");
    let bins = fig10_bins();
    let mut body = String::new();
    let mut csv = String::from("tag,group,bytes,min_duration_s\n");
    for (tag, mins) in [
        (StorageTag::Store, &data.store),
        (StorageTag::Retrieve, &data.retrieve),
    ] {
        let mut group_floor: Vec<(String, f64)> = Vec::new();
        for (gi, group) in ChunkGroup::ALL.iter().enumerate() {
            let mut floor = f64::INFINITY;
            for (bi, v) in mins[gi].iter().enumerate() {
                if let Some(secs) = v {
                    csv.push_str(&format!(
                        "{tag:?},{},{:.0},{secs:.3}\n",
                        group.label(),
                        bins.center(bi)
                    ));
                    floor = floor.min(*secs);
                }
            }
            if floor.is_finite() {
                group_floor.push((group.label().to_string(), floor));
            }
        }
        body.push_str(&format!("{tag:?}: minimum duration per chunk group: "));
        for (label, floor) in &group_floor {
            body.push_str(&format!("[{label}] {floor:.1}s  "));
        }
        body.push('\n');
    }
    body.push_str(
        "\nexpected: >50-chunk flows always last >30 s regardless of size (sequential\n\
         acknowledgments: one RTT + reaction time per chunk)\n",
    );
    Report::new(
        "fig10",
        "Minimum duration of flows with diverse number of chunks (Campus 2)",
        body,
    )
    .with_csv("fig10.csv", csv)
}

/// Fig. 11: per-household stored vs retrieved volume (Home 1 / Home 2).
pub fn fig11(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut csv = String::from("vantage,store_bytes,retrieve_bytes,devices\n");
    for kind in [VantageKind::Home1, VantageKind::Home2] {
        let v = sum.vantage(kind);
        let households = v.households.as_ref().expect("home summary has households");
        let mut store_total = 0u64;
        let mut retr_total = 0u64;
        for h in households.values() {
            store_total += h.store_bytes;
            retr_total += h.retrieve_bytes;
            csv.push_str(&format!(
                "{},{},{},{}\n",
                v.name,
                h.store_bytes,
                h.retrieve_bytes,
                h.devices.len().max(1)
            ));
        }
        body.push_str(&format!(
            "{}: households={} total retrieved {} / stored {} -> ratio {:.2} \
             (paper: Home1 1.4, Home2 0.9)\n",
            v.name,
            households.len(),
            fmt_bytes(retr_total),
            fmt_bytes(store_total),
            retr_total as f64 / store_total.max(1) as f64
        ));
    }
    // Campus ratios quoted in the same paragraph of the paper.
    for kind in [VantageKind::Campus1, VantageKind::Campus2] {
        let v = sum.vantage(kind);
        body.push_str(&format!(
            "{}: download/upload ratio {:.2} (paper: Campus1 1.6, Campus2 2.4)\n",
            v.name,
            v.storage.retrieve_down_adj as f64 / v.storage.store_up_adj.max(1) as f64
        ));
    }
    Report::new(
        "fig11",
        "Data volume stored and retrieved per household",
        body,
    )
    .with_csv("fig11.csv", csv)
}

/// Fig. 12: devices per household (home networks).
pub fn fig12(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec!["Devices", "Home 1", "Home 2"]);
    let mut dists: Vec<Vec<f64>> = Vec::new();
    for kind in [VantageKind::Home1, VantageKind::Home2] {
        let per_hh = sum
            .vantage(kind)
            .devices_per_household
            .as_ref()
            .expect("home summary has devices per household");
        let n = per_hh.len().max(1) as f64;
        let mut frac = vec![0.0f64; 5]; // 1,2,3,4,>4
        for &count in per_hh.values() {
            let idx = count.clamp(1, 5) - 1;
            frac[idx.min(4)] += 1.0 / n;
        }
        dists.push(frac);
    }
    for (i, label) in ["1", "2", "3", "4", "> 4"].iter().enumerate() {
        t.row(vec![
            label.to_string(),
            format!("{:.3}", dists[0][i]),
            format!("{:.3}", dists[1][i]),
        ]);
    }
    let mut body = t.render();
    body.push_str(&format!(
        "\nsingle-device households: Home1 {:.0}%, Home2 {:.0}% (paper: ~60%)\n",
        dists[0][0] * 100.0,
        dists[1][0] * 100.0
    ));
    Report::new("fig12", "Devices per household using the client", body)
        .with_csv("fig12.csv", t.csv())
}

/// Fig. 13: namespaces per device (Campus 1 vs Home 1).
pub fn fig13(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut cdfs: Vec<(String, Ecdf)> = Vec::new();
    for kind in [VantageKind::Campus1, VantageKind::Home1] {
        let v = sum.vantage(kind);
        let ns = v
            .namespaces_per_device
            .as_ref()
            .expect("summary tracks namespaces here");
        let counts: Vec<f64> = ns.values().map(|&n| n as f64).collect();
        let e = Ecdf::new(counts);
        body.push_str(&cdf_summary(
            &format!("{} namespaces/device", v.name),
            &e,
            &[
                (1.0, "single namespace (paper: C1 13%, H1 28%)"),
                (4.0, "≤4 => 1-F is share with ≥5 (paper: C1 50%, H1 23%)"),
            ],
        ));
        cdfs.push((v.name.clone(), e));
    }
    let refs: Vec<(&str, &Ecdf)> = cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    Report::new("fig13", "Number of namespaces per device", body)
        .with_csv("fig13.csv", cdfs_csv(&refs, 50))
}

/// Fig. 14: distinct device start-ups per day.
pub fn fig14(sum: &CaptureSummary) -> Report {
    let mut t = TextTable::new(vec!["day", "date", "C1", "C2", "H1", "H2"]);
    let series: Vec<&Vec<f64>> = sum.vantages.iter().map(|v| &v.startups).collect();
    for d in 0..sum.vantages[0].days as usize {
        t.row(vec![
            d.to_string(),
            CaptureCalendar::date_label(d as u32),
            format!("{:.3}", series[0].get(d).copied().unwrap_or(0.0)),
            format!("{:.3}", series[1].get(d).copied().unwrap_or(0.0)),
            format!("{:.3}", series[2].get(d).copied().unwrap_or(0.0)),
            format!("{:.3}", series[3].get(d).copied().unwrap_or(0.0)),
        ]);
    }
    // Home weekday/weekend flatness vs campus seasonality.
    let mut body = t.render();
    for (i, v) in sum.vantages.iter().enumerate() {
        let mut wd = Vec::new();
        let mut we = Vec::new();
        for (d, &x) in series[i].iter().enumerate() {
            if SimTime::from_day_offset(d as u32, SimDuration::ZERO).is_weekend() {
                we.push(x);
            } else {
                wd.push(x);
            }
        }
        let m = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        body.push_str(&format!(
            "{}: weekday mean {:.3}, weekend mean {:.3}\n",
            v.name,
            m(&wd),
            m(&we)
        ));
    }
    for v in &sum.vantages {
        if let Some(dip) = v.holiday_dip {
            body.push_str(&format!(
                "{}: holiday start-ups at {:.0}% of ordinary working days\n",
                v.name,
                dip * 100.0
            ));
        }
    }
    body.push_str(
        "\nexpected: ~40% of home devices start daily incl. weekends; strong weekly\n\
         seasonality at the campuses; dips around the April/May holidays\n",
    );
    Report::new("fig14", "Distinct device start-ups per day", body).with_csv("fig14.csv", t.csv())
}

/// Fig. 15: daily usage on weekdays (start-ups, active devices, retrieve
/// and store volume per hour).
pub fn fig15(sum: &CaptureSummary) -> Report {
    let mut csv = String::from("vantage,hour,startups,active,retrieve,store\n");
    let mut body = String::new();
    for v in &sum.vantages {
        let p = &v.hourly;
        for h in 0..24 {
            csv.push_str(&format!(
                "{},{h},{:.4},{:.4},{:.4},{:.4}\n",
                v.name, p.startups[h], p.active[h], p.retrieve[h], p.store[h]
            ));
        }
        body.push_str(&format!(
            "\n{} — active devices by hour (working days):\n",
            v.name
        ));
        let points: Vec<(String, f64)> =
            (0..24).map(|h| (format!("{h:02}h"), p.active[h])).collect();
        body.push_str(&bar_chart(&points, 48));
        let peak_hour = (0..24)
            .max_by(|&a, &b| p.startups[a].partial_cmp(&p.startups[b]).unwrap())
            .unwrap();
        // Correlation between start-ups and retrieve volume (Fig. 15(c)).
        let corr = correlation(&p.startups, &p.retrieve);
        body.push_str(&format!(
            "{}: start-up peak at {peak_hour:02}:00, corr(start-ups, retrieve) = {corr:.2}\n",
            v.name
        ));
    }
    body.push_str(
        "\nexpected: Campus 1 start-ups follow office hours; Campus 2 spread over the\n\
         day; homes peak morning + evening; retrieve volume correlates with start-ups\n",
    );
    Report::new("fig15", "Daily usage of Dropbox on weekdays", body).with_csv("fig15.csv", csv)
}

fn correlation(a: &[f64; 24], b: &[f64; 24]) -> f64 {
    let ma = a.iter().sum::<f64>() / 24.0;
    let mb = b.iter().sum::<f64>() / 24.0;
    let cov: f64 = (0..24).map(|i| (a[i] - ma) * (b[i] - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|x| (x - mb) * (x - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

/// Fig. 16: session durations (raw notification-flow durations).
pub fn fig16(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut cdfs: Vec<(String, Ecdf)> = Vec::new();
    for v in &sum.vantages {
        let e = Ecdf::new(v.raw_durations.clone());
        body.push_str(&cdf_summary(
            &format!("{} session duration (s)", v.name),
            &e,
            &[
                (60.0, "<1 min (NAT-killed; homes only)"),
                (4.0 * 3600.0, "≤4 h (paper: most devices)"),
                (8.0 * 3600.0, "≤8 h (Campus 1 work day)"),
            ],
        ));
        cdfs.push((v.name.clone(), e));
    }
    body.push_str(
        "\nexpected: sub-minute spike in the home curves (gateway resets), Campus 1\n\
         shifted to ~8 h work sessions, inflection at the always-on tail\n\n",
    );
    let refs: Vec<(&str, &Ecdf)> = cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    body.push_str(&cdf_chart(&refs, 72, 14));
    Report::new("fig16", "Distribution of session durations", body)
        .with_csv("fig16.csv", cdfs_csv(&refs, 200))
}

/// Fig. 17: storage via the main web interface (uploads and downloads).
pub fn fig17(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut cdfs: Vec<(String, Ecdf)> = Vec::new();
    for v in &sum.vantages {
        let up = Ecdf::new(v.web.web_up.clone());
        let down = Ecdf::new(v.web.web_down.clone());
        body.push_str(&cdf_summary(
            &format!("{} web upload bytes", v.name),
            &up,
            &[(10_000.0, "≤10 kB (paper: >95%)")],
        ));
        body.push_str(&cdf_summary(
            &format!("{} web download bytes", v.name),
            &down,
            &[
                (10_000.0, "≤10 kB (paper: up to 80%)"),
                (10_000_000.0, "≤10 MB (paper: >95%)"),
            ],
        ));
        cdfs.push((format!("{}-up", v.name), up));
        cdfs.push((format!("{}-down", v.name), down));
    }
    let refs: Vec<(&str, &Ecdf)> = cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    Report::new("fig17", "Storage via the main Web interface", body)
        .with_csv("fig17.csv", cdfs_csv(&refs, 150))
}

/// Fig. 18: size of direct-link downloads (no Campus 2: FQDN missing).
pub fn fig18(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut cdfs: Vec<(String, Ecdf)> = Vec::new();
    let mut web_flow_share = String::new();
    for kind in [VantageKind::Campus1, VantageKind::Home1, VantageKind::Home2] {
        let v = sum.vantage(kind);
        let dl_flows = v.web.direct_down.len();
        let e = Ecdf::new(v.web.direct_down.clone());
        body.push_str(&cdf_summary(
            &format!("{} direct-link download bytes", v.name),
            &e,
            &[(10_000_000.0, "≤10 MB (paper: large majority)")],
        ));
        web_flow_share.push_str(&format!(
            "{}: direct links are {:.0}% of web-storage flows (paper Home 1: 92%)\n",
            v.name,
            100.0 * dl_flows as f64 / v.web.web_storage_flows.max(1) as f64
        ));
        cdfs.push((v.name.clone(), e));
    }
    body.push('\n');
    body.push_str(&web_flow_share);
    let refs: Vec<(&str, &Ecdf)> = cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    Report::new("fig18", "Size of direct link downloads", body)
        .with_csv("fig18.csv", cdfs_csv(&refs, 150))
}

/// Fig. 19: typical storage-flow packet ladders from the testbed.
pub fn fig19() -> Report {
    use nettrace::{Endpoint, FlowKey, Ipv4};
    use tcpmodel::tls;
    use tcpmodel::{simulate, Dialogue, Direction, Message, PathParams, TcpParams, Write};

    let key = FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 9), 443),
    );
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(10),
        outer_rtt: SimDuration::from_millis(90),
        jitter: 0.0,
        loss_up: 0.0,
        loss_down: 0.0,
        up_rate: None,
        down_rate: None,
    };
    let mut body = String::new();
    for (label, dialogue) in [
        ("store (1 chunk)", {
            let mut m = tls::handshake(
                "dl-client9.dropbox.com",
                "*.dropbox.com",
                SimDuration::from_millis(60),
            );
            m.push(Message::simple(
                Direction::Up,
                SimDuration::from_millis(30),
                634 + 60_000,
            ));
            m.push(Message::simple(
                Direction::Down,
                SimDuration::from_millis(90),
                309,
            ));
            Dialogue::new(m)
        }),
        ("retrieve (1 chunk)", {
            let mut m = tls::handshake(
                "dl-client9.dropbox.com",
                "*.dropbox.com",
                SimDuration::from_millis(60),
            );
            m.push(Message {
                dir: Direction::Up,
                delay: SimDuration::from_millis(30),
                writes: vec![Write::plain(200), Write::plain(190)],
            });
            m.push(Message::simple(
                Direction::Down,
                SimDuration::from_millis(90),
                309 + 60_000,
            ));
            Dialogue::new(m)
        }),
    ] {
        let mut pkts = Vec::new();
        simulate(
            SimTime::EPOCH,
            key,
            &dialogue,
            &path,
            &TcpParams::era_2012_v1(),
            &mut Rng::new(1),
            &mut pkts,
        );
        body.push_str(&format!("--- {label} ---\n"));
        // Print the handshake/close ladder and collapse the bulk transfer.
        let mut bulk = 0u32;
        for p in &pkts {
            let dir = if p.src == key.client {
                "client->"
            } else {
                "<-server"
            };
            let interesting = p.flags.syn()
                || p.flags.fin()
                || p.flags.rst()
                || (p.flags.psh() && p.payload_len > 0);
            if interesting {
                if bulk > 0 {
                    body.push_str(&format!("          … {bulk} data/ack segments …\n"));
                    bulk = 0;
                }
                body.push_str(&format!(
                    "{:>14}  {dir} {:?} len={}\n",
                    format!("{}", p.ts),
                    p.flags,
                    p.payload_len
                ));
            } else {
                bulk += 1;
            }
        }
        if bulk > 0 {
            body.push_str(&format!("          … {bulk} data/ack segments …\n"));
        }
        body.push('\n');
    }
    body.push_str("60 s after the last payload the server sends the close alert (PSH+FIN);\nthe client answers RST — exactly Fig. 19's ladder.\n");
    Report::new(
        "fig19",
        "Typical flows in storage operations (testbed)",
        body,
    )
}

/// Fig. 20: bytes exchanged in storage flows (Campus 1) and the f(u) split.
pub fn fig20(sum: &CaptureSummary) -> Report {
    let v = sum.vantage(VantageKind::Campus1);
    let d = v.fig20.as_ref().expect("Campus 1 summary tracks Fig. 20");
    let csv = format!("up_adj,down_adj,tag\n{}", d.rows);
    let mut fu = String::from("u,f_u\n");
    let bins = LogBins::new(100.0, 1e9, 50);
    for i in 0..bins.len() {
        let u = bins.center(i);
        fu.push_str(&format!(
            "{:.0},{:.0}\n",
            u,
            dropbox_analysis::classify::f_u(u as u64)
        ));
    }
    let body = format!(
        "Campus 1 storage flows: {} tagged store, {} tagged retrieve.\n\
         Flows concentrate near the axes (a flow either stores or retrieves);\n\
         f(u) = 0.67(u-294)+4103 separates the two groups.\n",
        d.store, d.retrieve
    );
    Report::new("fig20", "Bytes exchanged in storage flows (Campus 1)", body)
        .with_csv("fig20_scatter.csv", csv)
        .with_csv("fig20_fu.csv", fu)
}

/// Fig. 21: payload in the reverse direction per estimated chunk.
pub fn fig21(sum: &CaptureSummary) -> Report {
    let mut body = String::new();
    let mut cdfs: Vec<(String, Ecdf)> = Vec::new();
    for v in &sum.vantages {
        for tag in [StorageTag::Store, StorageTag::Retrieve] {
            let e = Ecdf::new(v.storage.tag(tag).rev_payload.clone());
            let probes: &[(f64, &str)] = match tag {
                StorageTag::Store => &[(320.0, "≈309 B/chunk expected")],
                StorageTag::Retrieve => &[
                    (362.0, "lower edge of 362–426 band"),
                    (426.0, "upper edge of 362–426 band"),
                ],
            };
            body.push_str(&cdf_summary(
                &format!("{} {tag:?} reverse payload/chunk (B)", v.name),
                &e,
                probes,
            ));
            cdfs.push((format!("{}-{tag:?}", v.name), e));
        }
    }
    body.push_str(
        "\nexpected: store flows cluster at ~309 B/chunk (+alert for short flows);\n\
         retrieve flows inside 362–426 B/chunk; Home 2 store biased by the\n\
         acknowledgment-free misbehaving device\n",
    );
    let refs: Vec<(&str, &Ecdf)> = cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    Report::new(
        "fig21",
        "Payload in the reverse direction per estimated chunk",
        body,
    )
    .with_csv("fig21.csv", cdfs_csv(&refs, 150))
}

/// All figure generators that need the capture summary, in order.
pub fn all_with_capture(sum: &CaptureSummary) -> Vec<Report> {
    vec![
        fig2(sum),
        fig3(sum),
        fig4(sum),
        fig5(sum),
        fig6(sum),
        fig7(sum),
        fig8(sum),
        fig9(sum),
        fig10(sum),
        fig11(sum),
        fig12(sum),
        fig13(sum),
        fig14(sum),
        fig15(sum),
        fig16(sum),
        fig17(sum),
        fig18(sum),
        fig20(sum),
        fig21(sum),
    ]
}

/// Standalone (testbed) figures.
pub fn standalone() -> Vec<Report> {
    vec![fig1(), fig19()]
}

//! Ablation of the paper's three recommendations (Sec. 4.5).
//!
//! The paper identifies the application-layer protocol combined with large
//! RTTs as the bottleneck and proposes:
//!
//! 1. **bundling** smaller chunks (deployed as Dropbox 1.4.0's
//!    `store_batch`),
//! 2. **delayed acknowledgments** — pipelining chunks so the client never
//!    waits one RTT (+ server reaction) per chunk,
//! 3. **bringing storage closer** to the customers.
//!
//! Each proposal is implemented as a protocol variant and driven over the
//! same workload and path model; the report shows measured transfer
//! durations and throughputs side by side, including the RTT sweep for the
//! data-center-placement recommendation. The paper could only analyse
//! option 1 (after its deployment); here all three run.

use crate::report::{fmt_bps, Report, TextTable};
use dropbox_analysis::throughput::throughput_bps;
use nettrace::{Endpoint, FlowKey, Ipv4};
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::tls;
use tcpmodel::{simulate, CloseMode, Dialogue, Direction, Message, PathParams, TcpParams, Write};
use tstat::Monitor;

/// Protocol variant under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// v1.2.52: one store + one `ok` per chunk, strictly sequential.
    PerChunkAck,
    /// v1.4.0: chunks bundled into ≤4 MB `store_batch` operations, one
    /// `ok` per bundle, bundles sequential.
    Bundling,
    /// Recommendation 2: the client pipelines every chunk back-to-back and
    /// the server acknowledges once at the end.
    DelayedAck,
}

impl Variant {
    /// All variants, baseline first.
    pub const ALL: [Variant; 3] = [Variant::PerChunkAck, Variant::Bundling, Variant::DelayedAck];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::PerChunkAck => "per-chunk ack (v1.2.52)",
            Variant::Bundling => "bundling (v1.4.0)",
            Variant::DelayedAck => "delayed acks (pipelined)",
        }
    }
}

/// Build the store dialogue of a variant for `n` chunks of `chunk_bytes`.
fn dialogue(variant: Variant, n: u32, chunk_bytes: u32, rng: &mut Rng) -> Dialogue {
    fn server_reaction(rng: &mut Rng) -> SimDuration {
        SimDuration::from_millis(rng.range_u64(90, 150))
    }
    fn client_reaction(rng: &mut Rng) -> SimDuration {
        SimDuration::from_millis(rng.range_u64(40, 80))
    }
    let mut m = tls::handshake(
        "dl-client1.dropbox.com",
        "*.dropbox.com",
        SimDuration::from_millis(120),
    );
    match variant {
        Variant::PerChunkAck => {
            for _ in 0..n {
                m.push(Message {
                    dir: Direction::Up,
                    delay: client_reaction(rng),
                    writes: vec![tls::record(634 + chunk_bytes)],
                });
                m.push(Message {
                    dir: Direction::Down,
                    delay: server_reaction(rng),
                    writes: vec![Write::plain(309)],
                });
            }
        }
        Variant::Bundling => {
            let budget = 4 * 1024 * 1024u64;
            let per_bundle = (budget / chunk_bytes.max(1) as u64).max(1) as u32;
            let mut left = n;
            while left > 0 {
                let take = left.min(per_bundle);
                left -= take;
                m.push(Message {
                    dir: Direction::Up,
                    delay: client_reaction(rng),
                    writes: vec![tls::record(634 + take * chunk_bytes)],
                });
                m.push(Message {
                    dir: Direction::Down,
                    delay: server_reaction(rng),
                    writes: vec![Write::plain(309)],
                });
            }
        }
        Variant::DelayedAck => {
            // All chunks stream back-to-back as separate writes (the PSH
            // structure stays per-chunk); one cumulative acknowledgment.
            let writes: Vec<Write> = (0..n).map(|_| tls::record(634 + chunk_bytes)).collect();
            m.push(Message {
                dir: Direction::Up,
                delay: client_reaction(rng),
                writes,
            });
            m.push(Message {
                dir: Direction::Down,
                delay: server_reaction(rng),
                writes: vec![Write::plain(309)],
            });
        }
    }
    Dialogue::new(m).with_close(CloseMode::ClientFin {
        delay: SimDuration::from_millis(100),
    })
}

/// Measure one configuration; returns (duration s, throughput bit/s).
fn measure(variant: Variant, n: u32, chunk_bytes: u32, rtt_ms: u64, seed: u64) -> (f64, f64) {
    let mut rng = Rng::new(seed);
    let d = dialogue(variant, n, chunk_bytes, &mut rng);
    let key = FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
    );
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(8),
        outer_rtt: SimDuration::from_millis(rtt_ms.saturating_sub(8).max(1)),
        jitter: 0.03,
        loss_up: 0.0005,
        loss_down: 0.0005,
        up_rate: None,
        down_rate: None,
    };
    let tcp = match variant {
        Variant::PerChunkAck => TcpParams::era_2012_v1(),
        _ => TcpParams::era_2012_v14(),
    };
    let mut packets = Vec::new();
    simulate(
        SimTime::from_secs(1),
        key,
        &d,
        &path,
        &tcp,
        &mut rng,
        &mut packets,
    );
    let mut monitor = Monitor::new(true);
    let rec = monitor.process_flow(&packets).expect("record");
    let thr = throughput_bps(&rec).unwrap_or(0.0);
    let dur = dropbox_analysis::throughput::transfer_duration(&rec)
        .map(|x| x.as_secs_f64())
        .unwrap_or(0.0);
    (dur, thr)
}

/// The full ablation report.
pub fn recommendations() -> Report {
    // The paper's motivating workload: many small chunks.
    let n = 50u32;
    let chunk = 40_000u32;
    let baseline_rtt = 100u64;

    let mut t = TextTable::new(vec!["variant", "RTT", "duration", "throughput", "speedup"]);
    let (base_dur, base_thr) = measure(Variant::PerChunkAck, n, chunk, baseline_rtt, 1);
    for variant in Variant::ALL {
        let (dur, thr) = measure(variant, n, chunk, baseline_rtt, 1);
        t.row(vec![
            variant.label().to_string(),
            format!("{baseline_rtt}ms"),
            format!("{dur:.2}s"),
            fmt_bps(thr),
            format!("{:.1}x", thr / base_thr.max(1.0)),
        ]);
    }
    // Recommendation 3: bring storage closer — RTT sweep per variant.
    for rtt in [10u64, 25, 50, 100, 150, 200] {
        for variant in Variant::ALL {
            let (dur, thr) = measure(variant, n, chunk, rtt, 2);
            t.row(vec![
                variant.label().to_string(),
                format!("{rtt}ms"),
                format!("{dur:.2}s"),
                fmt_bps(thr),
                format!("{:.1}x", thr / base_thr.max(1.0)),
            ]);
        }
    }

    let (_, thr_bundle) = measure(Variant::Bundling, n, chunk, baseline_rtt, 1);
    let (_, thr_pipe) = measure(Variant::DelayedAck, n, chunk, baseline_rtt, 1);
    let (_, thr_near) = measure(Variant::PerChunkAck, n, chunk, 25, 1);
    let body = format!(
        "{}\nworkload: {n} chunks x {} kB; baseline duration {base_dur:.1}s at {baseline_rtt} ms RTT\n\
         \nsummary at {baseline_rtt} ms: bundling {:.1}x, delayed acks {:.1}x; \
         per-chunk acks at 25 ms RTT {:.1}x\n\
         — matching Sec. 4.5: the first two fix the application-layer bottleneck;\n\
         closer data-centers help every variant and also relieve the core network.\n",
        t.render(),
        chunk / 1_000,
        thr_bundle / base_thr.max(1.0),
        thr_pipe / base_thr.max(1.0),
        thr_near / base_thr.max(1.0),
    );
    Report::new(
        "recommendations",
        "Sec. 4.5 countermeasures, implemented and measured",
        body,
    )
    .with_csv("recommendations.csv", t.csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_protocol_fixes_beat_the_baseline() {
        let (_, base) = measure(Variant::PerChunkAck, 50, 40_000, 100, 1);
        let (_, bundle) = measure(Variant::Bundling, 50, 40_000, 100, 1);
        let (_, pipe) = measure(Variant::DelayedAck, 50, 40_000, 100, 1);
        assert!(
            bundle > 2.0 * base,
            "bundling {bundle:.0} vs base {base:.0}"
        );
        assert!(pipe > 2.0 * base, "pipelining {pipe:.0} vs base {base:.0}");
    }

    #[test]
    fn closer_storage_helps_the_baseline() {
        // Moving storage closer removes the RTT share of the per-chunk
        // stall, but the server/client reaction times remain — exactly the
        // paper's point that the protocol itself must change too.
        let (_, far) = measure(Variant::PerChunkAck, 50, 40_000, 150, 3);
        let (_, near) = measure(Variant::PerChunkAck, 50, 40_000, 25, 3);
        assert!(near > 1.3 * far, "near {near:.0} vs far {far:.0}");
        // For the pipelined variant the gain is much larger.
        let (_, far_p) = measure(Variant::DelayedAck, 50, 40_000, 150, 3);
        let (_, near_p) = measure(Variant::DelayedAck, 50, 40_000, 25, 3);
        assert!(near_p > 3.0 * far_p, "near {near_p:.0} vs far {far_p:.0}");
    }

    #[test]
    fn single_chunk_flows_barely_differ_across_variants() {
        // With one chunk there is no sequential-ack penalty to remove.
        let (_, a) = measure(Variant::PerChunkAck, 1, 40_000, 100, 4);
        let (_, b) = measure(Variant::DelayedAck, 1, 40_000, 100, 4);
        let ratio = b / a;
        assert!((0.6..1.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn report_renders_with_sweep() {
        let r = recommendations();
        assert!(r.body.contains("bundling"));
        assert!(r.body.contains("200ms"));
        assert!(!r.artifacts.is_empty());
    }
}

//! Experiment harness: regenerates every table and figure of the paper.
//!
//! * [`run`] — simulates the four vantage points (and the Campus 1
//!   Jun/Jul re-capture with Dropbox 1.4.0) as shards of
//!   `workload::ShardPlan::paper` on `simcore::par`'s deterministic
//!   fork-join executor; `--jobs N` changes wall-clock time only, never
//!   a single output byte,
//! * [`summary`] — the single-pass streaming summary: one
//!   [`dropbox_analysis::Pipeline`] walk per vantage feeds every
//!   accumulator, and tables/figures render from the resulting
//!   [`summary::CaptureSummary`] without re-scanning flows,
//! * [`report`] — plain-text/CSV report plumbing,
//! * [`tables`] — Tables 1–5,
//! * [`figures`] — Figures 1–21,
//! * [`validation`] — ground-truth scoring of the analysis methods
//!   (classification accuracy, chunk-estimation error, user inference),
//!   the check the original authors could only perform inside a testbed,
//! * [`recommendations`] — the Sec. 4.5 countermeasure ablation
//!   (bundling / delayed acks / closer data-centers), all three
//!   implemented and measured,
//! * [`ablations`] — parameter sweeps for the design choices DESIGN.md
//!   calls out (server initcwnd, loss rate, batch limit, outage knobs),
//! * [`chaos`] — the chaos-soak harness (`repro --chaos N`): many seeded
//!   control-plane fault scenarios, each audited by the driver and
//!   checked against the sync-convergence oracle (DESIGN.md §9),
//! * [`providers`] — the provider matrix (`repro --provider-matrix`):
//!   competing [`dropbox::spec`] protocol specifications driven through
//!   the same Home 1 workload, plus the bundling-vs-RTT sweep
//!   (DESIGN.md §10).
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro all --scale 0.1 --seed 7 --jobs 4 --out results/
//! repro fig9 table5
//! ```

pub mod ablations;
pub mod chaos;
pub mod chart;
pub mod figures;
pub mod providers;
pub mod recommendations;
pub mod report;
pub mod run;
pub mod summary;
pub mod tables;
pub mod validation;

pub use report::Report;
pub use run::{run_capture, Capture};
pub use summary::CaptureSummary;

//! Capture orchestration: simulate all vantage points once, reuse
//! everywhere.
//!
//! The five captures (four Mar–May vantage points + the Campus 1 Jun/Jul
//! re-capture) are cut into per-household sub-capture shards by
//! [`workload::ShardPlan::paper`] and executed on `simcore::par`'s
//! deterministic fork-join executor. `jobs` and the sub-shard count `K`
//! control wall-clock time only: the assembled [`Capture`] is
//! byte-identical for every worker and sub-shard count
//! (`crates/workload/tests/parallel_identity.rs` pins this, per capture,
//! down to the serialised flow logs).

use workload::{simulate_shards, FaultPlan, ShardPlan, SimOutput, VantageKind};

/// A full reproduction run: the four Mar–May captures plus the Campus 1
/// Jun/Jul re-capture with Dropbox 1.4.0 (Table 4).
pub struct Capture {
    /// Population scale factor used.
    pub scale: f64,
    /// Seed used.
    pub seed: u64,
    /// Campus 1, Campus 2, Home 1, Home 2 (v1.2.52 era).
    pub vantages: Vec<SimOutput>,
    /// Campus 1 re-capture (v1.4.0 + tuned server windows).
    pub campus1_v14: SimOutput,
}

impl Capture {
    /// Output of one vantage point.
    pub fn vantage(&self, kind: VantageKind) -> &SimOutput {
        let idx = VantageKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known vantage");
        &self.vantages[idx]
    }
}

/// Simulate everything on up to `jobs` worker threads (`1` = strictly
/// serial on the calling thread; see `simcore::par::available_jobs` for
/// an "auto" value). `faults` applies to every capture; pass
/// [`FaultPlan::none`] for the clean reproduction. Output bytes are
/// independent of `jobs`.
pub fn run_capture(scale: f64, seed: u64, faults: &FaultPlan, jobs: usize) -> Capture {
    run_capture_with_plan(&ShardPlan::paper(), scale, seed, faults, jobs)
}

/// [`run_capture`] with an explicit shard plan — use
/// [`ShardPlan::with_sub_shards`] to tune the household sub-shard count
/// (the `--hh-shards` flag of `repro`). The plan must end with the
/// Campus 1 re-capture, as [`ShardPlan::paper`] does. Output bytes are
/// independent of both `jobs` and the plan's sub-shard count.
pub fn run_capture_with_plan(
    plan: &ShardPlan,
    scale: f64,
    seed: u64,
    faults: &FaultPlan,
    jobs: usize,
) -> Capture {
    let mut outputs = simulate_shards(plan, scale, seed, faults, jobs);
    let campus1_v14 = outputs.pop().expect("plan ends with the re-capture");
    Capture {
        scale,
        seed,
        vantages: outputs,
        campus1_v14,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_all_vantages() {
        let cap = run_capture(0.012, 3, &FaultPlan::none(), 2);
        assert_eq!(cap.vantages.len(), 4);
        for (kind, out) in VantageKind::ALL.iter().zip(&cap.vantages) {
            assert_eq!(out.dataset.name, kind.name());
            assert!(!out.dataset.flows.is_empty(), "{kind:?} empty");
        }
        assert_eq!(cap.campus1_v14.dataset.days, 14);
        // Accessor returns the right dataset.
        assert_eq!(cap.vantage(VantageKind::Home2).dataset.name, "Home 2");
    }

    #[test]
    fn worker_count_does_not_change_the_capture() {
        let a = run_capture(0.012, 3, &FaultPlan::none(), 1);
        let b = run_capture(0.012, 3, &FaultPlan::none(), 3);
        for (x, y) in a
            .vantages
            .iter()
            .chain([&a.campus1_v14])
            .zip(b.vantages.iter().chain([&b.campus1_v14]))
        {
            assert_eq!(x.dataset.flows.len(), y.dataset.flows.len());
            let bytes =
                |o: &SimOutput| -> u64 { o.dataset.flows.iter().map(|f| f.total_bytes()).sum() };
            assert_eq!(bytes(x), bytes(y), "{} differs across jobs", x.dataset.name);
        }
    }

    #[test]
    fn sub_shard_count_does_not_change_the_capture() {
        let coarse = run_capture_with_plan(
            &ShardPlan::paper().with_sub_shards(1),
            0.012,
            3,
            &FaultPlan::none(),
            2,
        );
        let fine = run_capture(0.012, 3, &FaultPlan::none(), 2);
        for (x, y) in coarse
            .vantages
            .iter()
            .chain([&coarse.campus1_v14])
            .zip(fine.vantages.iter().chain([&fine.campus1_v14]))
        {
            let jsonl = |o: &SimOutput| -> Vec<u8> {
                let mut buf = Vec::new();
                nettrace::flowlog::write_jsonl(&mut buf, &o.dataset.flows).expect("serialise");
                buf
            };
            assert_eq!(jsonl(x), jsonl(y), "{} differs across K", x.dataset.name);
        }
    }
}

//! Capture orchestration: simulate all vantage points once, reuse
//! everywhere.
//!
//! The five captures (four Mar–May vantage points + the Campus 1 Jun/Jul
//! re-capture) run as shards of [`workload::ShardPlan::paper`] on
//! `simcore::par`'s deterministic fork-join executor. `jobs` controls
//! wall-clock time only: the assembled [`Capture`] is byte-identical for
//! every worker count (`crates/workload/tests/parallel_identity.rs` pins
//! this, per shard, down to the serialised flow logs).

use workload::{simulate_shards, FaultPlan, ShardPlan, SimOutput, VantageKind};

/// A full reproduction run: the four Mar–May captures plus the Campus 1
/// Jun/Jul re-capture with Dropbox 1.4.0 (Table 4).
pub struct Capture {
    /// Population scale factor used.
    pub scale: f64,
    /// Seed used.
    pub seed: u64,
    /// Campus 1, Campus 2, Home 1, Home 2 (v1.2.52 era).
    pub vantages: Vec<SimOutput>,
    /// Campus 1 re-capture (v1.4.0 + tuned server windows).
    pub campus1_v14: SimOutput,
}

impl Capture {
    /// Output of one vantage point.
    pub fn vantage(&self, kind: VantageKind) -> &SimOutput {
        let idx = VantageKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known vantage");
        &self.vantages[idx]
    }
}

/// Simulate everything on up to `jobs` worker threads (`1` = strictly
/// serial on the calling thread; see `simcore::par::available_jobs` for
/// an "auto" value). `faults` applies to every capture; pass
/// [`FaultPlan::none`] for the clean reproduction. Output bytes are
/// independent of `jobs`.
pub fn run_capture(scale: f64, seed: u64, faults: &FaultPlan, jobs: usize) -> Capture {
    let plan = ShardPlan::paper();
    let mut outputs = simulate_shards(&plan, scale, seed, faults, jobs);
    let campus1_v14 = outputs.pop().expect("plan ends with the re-capture");
    Capture {
        scale,
        seed,
        vantages: outputs,
        campus1_v14,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_all_vantages() {
        let cap = run_capture(0.012, 3, &FaultPlan::none(), 2);
        assert_eq!(cap.vantages.len(), 4);
        for (kind, out) in VantageKind::ALL.iter().zip(&cap.vantages) {
            assert_eq!(out.dataset.name, kind.name());
            assert!(!out.dataset.flows.is_empty(), "{kind:?} empty");
        }
        assert_eq!(cap.campus1_v14.dataset.days, 14);
        // Accessor returns the right dataset.
        assert_eq!(cap.vantage(VantageKind::Home2).dataset.name, "Home 2");
    }

    #[test]
    fn worker_count_does_not_change_the_capture() {
        let a = run_capture(0.012, 3, &FaultPlan::none(), 1);
        let b = run_capture(0.012, 3, &FaultPlan::none(), 3);
        for (x, y) in a
            .vantages
            .iter()
            .chain([&a.campus1_v14])
            .zip(b.vantages.iter().chain([&b.campus1_v14]))
        {
            assert_eq!(x.dataset.flows.len(), y.dataset.flows.len());
            let bytes =
                |o: &SimOutput| -> u64 { o.dataset.flows.iter().map(|f| f.total_bytes()).sum() };
            assert_eq!(bytes(x), bytes(y), "{} differs across jobs", x.dataset.name);
        }
    }
}

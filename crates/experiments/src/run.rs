//! Capture orchestration: simulate all vantage points once, reuse
//! everywhere.

use dropbox::client::ClientVersion;
use std::thread;
use workload::{simulate_vantage, FaultPlan, SimOutput, VantageConfig, VantageKind};

/// A full reproduction run: the four Mar–May captures plus the Campus 1
/// Jun/Jul re-capture with Dropbox 1.4.0 (Table 4).
pub struct Capture {
    /// Population scale factor used.
    pub scale: f64,
    /// Seed used.
    pub seed: u64,
    /// Campus 1, Campus 2, Home 1, Home 2 (v1.2.52 era).
    pub vantages: Vec<SimOutput>,
    /// Campus 1 re-capture (v1.4.0 + tuned server windows).
    pub campus1_v14: SimOutput,
}

impl Capture {
    /// Output of one vantage point.
    pub fn vantage(&self, kind: VantageKind) -> &SimOutput {
        let idx = VantageKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known vantage");
        &self.vantages[idx]
    }
}

/// Simulate everything. The four main captures run on worker threads (they
/// are independent deployments); the Jun/Jul re-capture runs 14 days.
/// `faults` applies to every vantage point; pass [`FaultPlan::none`] for
/// the clean reproduction.
pub fn run_capture(scale: f64, seed: u64, faults: &FaultPlan) -> Capture {
    let configs: Vec<VantageConfig> = VantageKind::ALL
        .iter()
        .map(|&k| VantageConfig::paper(k, scale))
        .collect();

    let mut vantages: Vec<Option<SimOutput>> = Vec::new();
    for _ in 0..configs.len() {
        vantages.push(None);
    }
    thread::scope(|s| {
        let mut handles = Vec::new();
        for config in &configs {
            handles.push(
                s.spawn(move || simulate_vantage(config, ClientVersion::V1_2_52, seed, faults)),
            );
        }
        for (slot, h) in vantages.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("vantage simulation panicked"));
        }
    });

    let mut c1_config = VantageConfig::paper(VantageKind::Campus1, scale);
    c1_config.days = 14; // Jun/Jul re-capture window
    let campus1_v14 = simulate_vantage(&c1_config, ClientVersion::V1_4_0, seed ^ 0x14, faults);

    Capture {
        scale,
        seed,
        vantages: vantages.into_iter().map(|v| v.expect("filled")).collect(),
        campus1_v14,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_all_vantages() {
        let cap = run_capture(0.012, 3, &FaultPlan::none());
        assert_eq!(cap.vantages.len(), 4);
        for (kind, out) in VantageKind::ALL.iter().zip(&cap.vantages) {
            assert_eq!(out.dataset.name, kind.name());
            assert!(!out.dataset.flows.is_empty(), "{kind:?} empty");
        }
        assert_eq!(cap.campus1_v14.dataset.days, 14);
        // Accessor returns the right dataset.
        assert_eq!(cap.vantage(VantageKind::Home2).dataset.name, "Home 2");
    }
}

//! Single-pass capture summaries.
//!
//! Every flow-derived statistic the tables and figures consume is
//! computed here by fanning each vantage point's record stream through
//! **one** [`Pipeline`] — the experiment harness no longer re-scans
//! `dataset.flows` once per figure. A [`VantageSummary`] holds the
//! finished accumulator outputs; the figure/table generators are pure
//! renderers over it.
//!
//! Two kinds of state live in the accumulators:
//!
//! * *aggregates* (tables, daily series, per-role shares) — bounded by
//!   the analysis dimensions (addresses, days, roles), not by the flow
//!   count,
//! * *distributions* (ECDF sample vectors, scatter rows) — O(flows in
//!   the category), because the reports pin byte-identical ECDFs and
//!   CSV artifacts, which need the exact point sets in stream order.
//!
//! Vantage-specific statistics (the Campus 2 throughput scatter, the
//! home-network household tables, …) are only accumulated where a
//! consumer exists, controlled by [`SummarySpec`].

use dropbox_analysis::chunks::{estimate_chunks, reverse_payload_per_chunk, ChunkGroup};
use dropbox_analysis::classify::{
    dropbox_role, ssl_adjusted, storage_tag, transfer_size, DropboxRole, Provider, StorageTag,
};
use dropbox_analysis::dataset::{
    DailyBytesAcc, DailyTotalAcc, DatasetOverview, DropboxTotals, DropboxTotalsAcc, OverviewAcc,
    ProviderDay, ProviderSeriesAcc, RoleBreakdownAcc, RoleShare, StorageServersAcc,
};
use dropbox_analysis::groups::{HouseholdUsage, HouseholdsAcc};
use dropbox_analysis::sessions::{
    DevicesPerHouseholdAcc, HolidayDipAcc, HourlyProfiles, HourlyProfilesAcc,
    NamespacesPerDeviceAcc, RawDurationsAcc, StartupsAcc,
};
use dropbox_analysis::stream::Pipeline;
use dropbox_analysis::throughput::{throughput_bps, transfer_duration, ThetaModel};
use dropbox_analysis::Accumulate;
use nettrace::{FlowRecord, Ipv4};
use simcore::stats::{LogBins, OrderlessSum};
use simcore::SimDuration;
use std::collections::BTreeMap;
use std::mem::size_of;
use workload::{SimOutput, VantageKind};

use crate::run::Capture;

/// Per-tag (store/retrieve) sample vectors of client-storage flows, in
/// stream order — the inputs of Figs. 7, 8, 21 and Table 4.
#[derive(Clone, Debug, Default)]
pub struct TagSamples {
    /// Whole-flow sizes (`total_bytes`), Fig. 7.
    pub sizes: Vec<f64>,
    /// Estimated chunks per flow, Fig. 8.
    pub chunks: Vec<f64>,
    /// Reverse payload per estimated chunk, Fig. 21.
    pub rev_payload: Vec<f64>,
    /// Payload transfer sizes (`transfer_size`), Table 4.
    pub transfer_sizes: Vec<f64>,
    /// Throughputs of flows with a defined duration, Table 4.
    pub throughputs: Vec<f64>,
}

/// All per-tag storage-flow statistics of one vantage point.
#[derive(Clone, Debug, Default)]
pub struct StorageFlows {
    /// Store-tagged flows.
    pub store: TagSamples,
    /// Retrieve-tagged flows.
    pub retrieve: TagSamples,
    /// SSL-adjusted uploaded bytes of store flows (Fig. 11 ratios).
    pub store_up_adj: u64,
    /// SSL-adjusted downloaded bytes of retrieve flows (Fig. 11 ratios).
    pub retrieve_down_adj: u64,
}

impl StorageFlows {
    /// Samples of one tag.
    pub fn tag(&self, tag: StorageTag) -> &TagSamples {
        match tag {
            StorageTag::Store => &self.store,
            StorageTag::Retrieve => &self.retrieve,
        }
    }
}

/// Streaming accumulator behind [`StorageFlows`].
#[derive(Default)]
pub struct StorageFlowsAcc {
    out: StorageFlows,
}

impl Accumulate for StorageFlowsAcc {
    type Output = StorageFlows;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            return;
        }
        let (up, down) = ssl_adjusted(f);
        let t = match storage_tag(f) {
            StorageTag::Store => {
                self.out.store_up_adj += up;
                &mut self.out.store
            }
            StorageTag::Retrieve => {
                self.out.retrieve_down_adj += down;
                &mut self.out.retrieve
            }
        };
        t.sizes.push(f.total_bytes() as f64);
        t.chunks.push(estimate_chunks(f) as f64);
        if let Some(p) = reverse_payload_per_chunk(f) {
            t.rev_payload.push(p);
        }
        t.transfer_sizes.push(transfer_size(f) as f64);
        if let Some(x) = throughput_bps(f) {
            t.throughputs.push(x);
        }
    }

    fn finish(self) -> StorageFlows {
        self.out
    }

    fn state_bytes(&self) -> usize {
        let tag = |t: &TagSamples| {
            (t.sizes.len()
                + t.chunks.len()
                + t.rev_payload.len()
                + t.transfer_sizes.len()
                + t.throughputs.len())
                * size_of::<f64>()
        };
        size_of::<Self>() + tag(&self.out.store) + tag(&self.out.retrieve)
    }
}

/// Minimum-RTT samples of the storage and control planes (Fig. 6):
/// flows with ≥ 10 RTT samples, in stream order.
#[derive(Clone, Debug, Default)]
pub struct RttPlanes {
    /// Client-storage flows.
    pub storage: Vec<f64>,
    /// Client-control and notification flows.
    pub control: Vec<f64>,
}

/// Streaming accumulator behind [`RttPlanes`].
#[derive(Default)]
pub struct RttAcc {
    out: RttPlanes,
}

impl Accumulate for RttAcc {
    type Output = RttPlanes;

    fn observe(&mut self, f: &FlowRecord) {
        if f.rtt_samples < 10 {
            return;
        }
        let plane = match dropbox_role(f) {
            Some(DropboxRole::ClientStorage) => &mut self.out.storage,
            Some(DropboxRole::ClientControl) | Some(DropboxRole::NotifyControl) => {
                &mut self.out.control
            }
            _ => return,
        };
        if let Some(r) = f.min_rtt_ms {
            plane.push(r);
        }
    }

    fn finish(self) -> RttPlanes {
        self.out
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + (self.out.storage.len() + self.out.control.len()) * size_of::<f64>()
    }
}

/// Web-interface statistics (Figs. 17–18): upload/download sizes of the
/// main interface (`dl-web`) and direct-link (`dl`) download sizes.
#[derive(Clone, Debug, Default)]
pub struct WebStats {
    /// Upload bytes of `dl-web.dropbox.com` flows.
    pub web_up: Vec<f64>,
    /// Download bytes of `dl-web.dropbox.com` flows.
    pub web_down: Vec<f64>,
    /// Download bytes of `dl.dropbox.com` flows (count = `len()`).
    pub direct_down: Vec<f64>,
    /// All web-storage flows (direct links + main interface + rest).
    pub web_storage_flows: usize,
}

/// Streaming accumulator behind [`WebStats`].
#[derive(Default)]
pub struct WebAcc {
    out: WebStats,
}

impl Accumulate for WebAcc {
    type Output = WebStats;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::WebStorage) {
            return;
        }
        self.out.web_storage_flows += 1;
        match f.server_name() {
            Some("dl-web.dropbox.com") => {
                self.out.web_up.push(f.up.bytes as f64);
                self.out.web_down.push(f.down.bytes as f64);
            }
            Some("dl.dropbox.com") => self.out.direct_down.push(f.down.bytes as f64),
            _ => {}
        }
    }

    fn finish(self) -> WebStats {
        self.out
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>()
            + (self.out.web_up.len() + self.out.web_down.len() + self.out.direct_down.len())
                * size_of::<f64>()
    }
}

/// One tag's share of the Fig. 9 throughput scatter.
#[derive(Clone, Debug, Default)]
pub struct Fig9Tag {
    /// CSV rows (`tag,bytes,throughput_bps,chunks,group`) in stream order.
    pub rows: String,
    /// Flows with a defined throughput.
    pub n: usize,
    /// Flows above the θ slow-start bound.
    pub above_theta: usize,
    /// Throughput sum (exact, order-insensitive accumulation — see
    /// [`Fig9Acc`]).
    pub thr_sum: f64,
    /// Maximum throughput.
    pub thr_max: f64,
}

/// Fig. 9 scatter statistics (Campus 2).
#[derive(Clone, Debug, Default)]
pub struct Fig9Data {
    /// Store-tagged flows.
    pub store: Fig9Tag,
    /// Retrieve-tagged flows.
    pub retrieve: Fig9Tag,
}

/// Streaming accumulator behind [`Fig9Data`]. Throughput sums accumulate
/// in `OrderlessSum`s so the reported means cannot depend on fold order;
/// `finish` rounds them once into [`Fig9Tag::thr_sum`].
pub struct Fig9Acc {
    theta: ThetaModel,
    out: Fig9Data,
    store_thr: OrderlessSum,
    retr_thr: OrderlessSum,
}

/// The RTT Fig. 9's θ reference uses (outer 88 ms + access).
pub fn fig9_theta() -> ThetaModel {
    ThetaModel::paper(SimDuration::from_millis(100))
}

impl Fig9Acc {
    /// New accumulator with the paper's θ model.
    pub fn new() -> Self {
        Fig9Acc {
            theta: fig9_theta(),
            out: Fig9Data::default(),
            store_thr: OrderlessSum::new(),
            retr_thr: OrderlessSum::new(),
        }
    }
}

impl Default for Fig9Acc {
    fn default() -> Self {
        Self::new()
    }
}

impl Accumulate for Fig9Acc {
    type Output = Fig9Data;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            return;
        }
        let tag = storage_tag(f);
        let bytes = transfer_size(f);
        let Some(x) = throughput_bps(f) else { return };
        let c = estimate_chunks(f);
        let (t, thr) = match tag {
            StorageTag::Store => (&mut self.out.store, &mut self.store_thr),
            StorageTag::Retrieve => (&mut self.out.retrieve, &mut self.retr_thr),
        };
        thr.add(x);
        t.thr_max = t.thr_max.max(x);
        t.n += 1;
        if x > self.theta.theta_bps(bytes) {
            t.above_theta += 1;
        }
        t.rows.push_str(&format!(
            "{tag:?},{bytes},{x:.0},{c},{}\n",
            ChunkGroup::of(c).label()
        ));
    }

    fn finish(self) -> Fig9Data {
        let mut out = self.out;
        out.store.thr_sum = self.store_thr.value();
        out.retrieve.thr_sum = self.retr_thr.value();
        out
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.out.store.rows.len() + self.out.retrieve.rows.len()
    }
}

/// The size bins of Fig. 10's duration-floor grid.
pub fn fig10_bins() -> LogBins {
    LogBins::new(1_000.0, 400e6, 36)
}

/// Minimum flow duration per (chunk group, size bin), per tag (Fig. 10,
/// Campus 2). Indexed `[group][bin]`.
#[derive(Clone, Debug)]
pub struct Fig10Data {
    /// Store-tagged minima.
    pub store: Vec<Vec<Option<f64>>>,
    /// Retrieve-tagged minima.
    pub retrieve: Vec<Vec<Option<f64>>>,
}

/// Streaming accumulator behind [`Fig10Data`].
pub struct Fig10Acc {
    bins: LogBins,
    out: Fig10Data,
}

impl Fig10Acc {
    /// New accumulator over [`fig10_bins`].
    pub fn new() -> Self {
        let bins = fig10_bins();
        let grid = || vec![vec![None; bins.len()]; ChunkGroup::ALL.len()];
        Fig10Acc {
            out: Fig10Data {
                store: grid(),
                retrieve: grid(),
            },
            bins,
        }
    }
}

impl Default for Fig10Acc {
    fn default() -> Self {
        Self::new()
    }
}

impl Accumulate for Fig10Acc {
    type Output = Fig10Data;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            return;
        }
        let bytes = transfer_size(f);
        if bytes == 0 {
            return;
        }
        let Some(d) = transfer_duration(f) else {
            return;
        };
        let g = ChunkGroup::ALL
            .iter()
            .position(|&g| g == ChunkGroup::of(estimate_chunks(f)))
            .expect("group");
        let b = self.bins.index(bytes as f64);
        let grid = match storage_tag(f) {
            StorageTag::Store => &mut self.out.store,
            StorageTag::Retrieve => &mut self.out.retrieve,
        };
        let secs = d.as_secs_f64();
        grid[g][b] = Some(grid[g][b].map_or(secs, |m: f64| m.min(secs)));
    }

    fn finish(self) -> Fig10Data {
        self.out
    }

    fn state_bytes(&self) -> usize {
        let grid = |g: &[Vec<Option<f64>>]| {
            g.iter()
                .map(|r| r.len() * size_of::<Option<f64>>())
                .sum::<usize>()
        };
        size_of::<Self>() + grid(&self.out.store) + grid(&self.out.retrieve)
    }
}

/// Fig. 20 scatter (Campus 1): SSL-adjusted byte pairs in stream order
/// plus the store/retrieve split.
#[derive(Clone, Debug, Default)]
pub struct Fig20Data {
    /// CSV rows (`up_adj,down_adj,tag`), no header.
    pub rows: String,
    /// Store-tagged flows.
    pub store: usize,
    /// Retrieve-tagged flows.
    pub retrieve: usize,
}

/// Streaming accumulator behind [`Fig20Data`].
#[derive(Default)]
pub struct Fig20Acc {
    out: Fig20Data,
}

impl Accumulate for Fig20Acc {
    type Output = Fig20Data;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            return;
        }
        let (u, d) = ssl_adjusted(f);
        let tag = storage_tag(f);
        match tag {
            StorageTag::Store => self.out.store += 1,
            StorageTag::Retrieve => self.out.retrieve += 1,
        }
        self.out.rows.push_str(&format!("{u},{d},{tag:?}\n"));
    }

    fn finish(self) -> Fig20Data {
        self.out
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.out.rows.len()
    }
}

/// Which vantage-specific accumulators to register: statistics are only
/// paid for where a table or figure consumes them.
#[derive(Clone, Copy, Debug, Default)]
pub struct SummarySpec {
    /// Per-provider daily series (Fig. 2; Home 1).
    pub provider_series: bool,
    /// Dropbox/YouTube daily byte shares (Fig. 3; Campus 2).
    pub daily_shares: bool,
    /// Household aggregation and devices/household (Figs. 11–12,
    /// Table 5; home networks).
    pub households: bool,
    /// Namespaces per device (Fig. 13; Campus 1 and Home 1).
    pub namespaces: bool,
    /// Throughput scatter + θ (Fig. 9; Campus 2).
    pub fig9: bool,
    /// Duration-floor grid (Fig. 10; Campus 2).
    pub fig10: bool,
    /// Up/down byte scatter (Fig. 20; Campus 1).
    pub fig20: bool,
}

impl SummarySpec {
    /// The statistics the paper's reports consume at `kind`.
    pub fn for_kind(kind: VantageKind) -> Self {
        match kind {
            VantageKind::Campus1 => SummarySpec {
                namespaces: true,
                fig20: true,
                ..Self::default()
            },
            VantageKind::Campus2 => SummarySpec {
                daily_shares: true,
                fig9: true,
                fig10: true,
                ..Self::default()
            },
            VantageKind::Home1 => SummarySpec {
                provider_series: true,
                households: true,
                namespaces: true,
                ..Self::default()
            },
            VantageKind::Home2 => SummarySpec {
                households: true,
                ..Self::default()
            },
        }
    }

    /// The Campus 1 Jun/Jul re-capture only feeds Table 4.
    pub fn recapture() -> Self {
        Self::default()
    }
}

/// Everything the reports need from one vantage point, computed in a
/// single pass over its flow records.
pub struct VantageSummary {
    /// Vantage point name ("Campus 1", …).
    pub name: String,
    /// Capture days.
    pub days: u32,
    /// Chunk transfers served by LAN Sync (from the driver, not flows).
    pub lan_synced: u64,
    /// Records the pipeline observed.
    pub records: u64,
    /// Accumulator stages registered in the pipeline.
    pub stages: usize,
    /// Accumulator state at the end of the pass (the peak: accumulator
    /// state only grows during a pass).
    pub state_bytes: usize,
    /// Table 2 row.
    pub overview: DatasetOverview,
    /// Table 3 row.
    pub dropbox_totals: DropboxTotals,
    /// Fig. 4 per-role shares.
    pub role_breakdown: BTreeMap<&'static str, RoleShare>,
    /// Fig. 5 storage servers per day.
    pub storage_servers: Vec<usize>,
    /// Figs. 7/8/21 + Table 4 storage-flow samples.
    pub storage: StorageFlows,
    /// Fig. 6 RTT samples.
    pub rtt: RttPlanes,
    /// Figs. 17–18 web-interface statistics.
    pub web: WebStats,
    /// Fig. 14 start-ups per day.
    pub startups: Vec<f64>,
    /// Fig. 14 holiday dip.
    pub holiday_dip: Option<f64>,
    /// Fig. 15 hourly weekday profiles.
    pub hourly: HourlyProfiles,
    /// Fig. 16 raw session durations.
    pub raw_durations: Vec<f64>,
    /// Fig. 2 per-provider series (where [`SummarySpec::provider_series`]).
    pub provider_series: Option<BTreeMap<Provider, Vec<ProviderDay>>>,
    /// Fig. 3 daily Dropbox bytes (where [`SummarySpec::daily_shares`]).
    pub daily_dropbox: Option<Vec<u64>>,
    /// Fig. 3 daily YouTube bytes.
    pub daily_youtube: Option<Vec<u64>>,
    /// Fig. 3 daily total bytes.
    pub daily_total: Option<Vec<u64>>,
    /// Figs. 11/12 + Table 5 households (where [`SummarySpec::households`]).
    pub households: Option<BTreeMap<Ipv4, HouseholdUsage>>,
    /// Fig. 12 devices per household.
    pub devices_per_household: Option<BTreeMap<Ipv4, usize>>,
    /// Fig. 13 namespaces per device (where [`SummarySpec::namespaces`]).
    pub namespaces_per_device: Option<BTreeMap<u64, usize>>,
    /// Fig. 9 scatter (where [`SummarySpec::fig9`]).
    pub fig9: Option<Fig9Data>,
    /// Fig. 10 grid (where [`SummarySpec::fig10`]).
    pub fig10: Option<Fig10Data>,
    /// Fig. 20 scatter (where [`SummarySpec::fig20`]).
    pub fig20: Option<Fig20Data>,
}

impl VantageSummary {
    /// Fan `out`'s record stream through every accumulator `spec` asks
    /// for — one pass, shared by all registered analyses.
    pub fn compute(out: &SimOutput, spec: &SummarySpec) -> Self {
        let days = out.dataset.days;
        let mut overview = OverviewAcc::default();
        let mut totals = DropboxTotalsAcc::default();
        let mut roles = RoleBreakdownAcc::default();
        let mut servers = StorageServersAcc::new(days);
        let mut storage = StorageFlowsAcc::default();
        let mut rtt = RttAcc::default();
        let mut web = WebAcc::default();
        let mut startups = StartupsAcc::new(days);
        let mut holiday = HolidayDipAcc::new(days);
        let mut hourly = HourlyProfilesAcc::new(days);
        let mut raw = RawDurationsAcc::default();
        let mut provider_series = spec.provider_series.then(|| ProviderSeriesAcc::new(days));
        let mut daily_dropbox = spec
            .daily_shares
            .then(|| DailyBytesAcc::new(Provider::Dropbox, days));
        let mut daily_youtube = spec
            .daily_shares
            .then(|| DailyBytesAcc::new(Provider::YouTube, days));
        let mut daily_total = spec.daily_shares.then(|| DailyTotalAcc::new(days));
        let mut households = spec.households.then(HouseholdsAcc::default);
        let mut devices = spec.households.then(DevicesPerHouseholdAcc::default);
        let mut namespaces = spec.namespaces.then(NamespacesPerDeviceAcc::default);
        let mut fig9 = spec.fig9.then(Fig9Acc::new);
        let mut fig10 = spec.fig10.then(Fig10Acc::new);
        let mut fig20 = spec.fig20.then(Fig20Acc::default);

        let (records, stages, state_bytes) = {
            let mut p = Pipeline::new();
            p.register(&mut overview)
                .register(&mut totals)
                .register(&mut roles)
                .register(&mut servers)
                .register(&mut storage)
                .register(&mut rtt)
                .register(&mut web)
                .register(&mut startups)
                .register(&mut holiday)
                .register(&mut hourly)
                .register(&mut raw);
            if let Some(a) = provider_series.as_mut() {
                p.register(a);
            }
            if let Some(a) = daily_dropbox.as_mut() {
                p.register(a);
            }
            if let Some(a) = daily_youtube.as_mut() {
                p.register(a);
            }
            if let Some(a) = daily_total.as_mut() {
                p.register(a);
            }
            if let Some(a) = households.as_mut() {
                p.register(a);
            }
            if let Some(a) = devices.as_mut() {
                p.register(a);
            }
            if let Some(a) = namespaces.as_mut() {
                p.register(a);
            }
            if let Some(a) = fig9.as_mut() {
                p.register(a);
            }
            if let Some(a) = fig10.as_mut() {
                p.register(a);
            }
            if let Some(a) = fig20.as_mut() {
                p.register(a);
            }
            out.dataset.stream_into(&mut p);
            (p.records(), p.stages(), p.state_bytes())
        };

        VantageSummary {
            name: out.dataset.name.clone(),
            days,
            lan_synced: out.lan_synced,
            records,
            stages,
            state_bytes,
            overview: overview.finish(),
            dropbox_totals: totals.finish(),
            role_breakdown: roles.finish(),
            storage_servers: servers.finish(),
            storage: storage.finish(),
            rtt: rtt.finish(),
            web: web.finish(),
            startups: startups.finish(),
            holiday_dip: holiday.finish(),
            hourly: hourly.finish(),
            raw_durations: raw.finish(),
            provider_series: provider_series.map(Accumulate::finish),
            daily_dropbox: daily_dropbox.map(Accumulate::finish),
            daily_youtube: daily_youtube.map(Accumulate::finish),
            daily_total: daily_total.map(Accumulate::finish),
            households: households.map(Accumulate::finish),
            devices_per_household: devices.map(Accumulate::finish),
            namespaces_per_device: namespaces.map(Accumulate::finish),
            fig9: fig9.map(Accumulate::finish),
            fig10: fig10.map(Accumulate::finish),
            fig20: fig20.map(Accumulate::finish),
        }
    }
}

/// Single-pass summaries of a whole reproduction run: the four Mar–May
/// vantage points plus the Campus 1 Jun/Jul re-capture.
pub struct CaptureSummary {
    /// Population scale factor of the run.
    pub scale: f64,
    /// Simulation seed of the run.
    pub seed: u64,
    /// Campus 1, Campus 2, Home 1, Home 2 (v1.2.52 era).
    pub vantages: Vec<VantageSummary>,
    /// Campus 1 re-capture (v1.4.0), Table 4's second era.
    pub campus1_v14: VantageSummary,
}

impl CaptureSummary {
    /// Summarise every vantage point of `cap` (one pass each).
    pub fn compute(cap: &Capture) -> Self {
        let vantages = VantageKind::ALL
            .iter()
            .zip(&cap.vantages)
            .map(|(&kind, out)| VantageSummary::compute(out, &SummarySpec::for_kind(kind)))
            .collect();
        let campus1_v14 = VantageSummary::compute(&cap.campus1_v14, &SummarySpec::recapture());
        CaptureSummary {
            scale: cap.scale,
            seed: cap.seed,
            vantages,
            campus1_v14,
        }
    }

    /// Summary of one vantage point.
    pub fn vantage(&self, kind: VantageKind) -> &VantageSummary {
        let idx = VantageKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known vantage");
        &self.vantages[idx]
    }

    /// Total records observed across all five passes.
    pub fn records(&self) -> u64 {
        self.vantages
            .iter()
            .chain(std::iter::once(&self.campus1_v14))
            .map(|v| v.records)
            .sum()
    }

    /// Total accumulator stages registered across all five passes.
    pub fn stages(&self) -> usize {
        self.vantages
            .iter()
            .chain(std::iter::once(&self.campus1_v14))
            .map(|v| v.stages)
            .sum()
    }

    /// Total end-of-pass accumulator state across all five passes.
    pub fn state_bytes(&self) -> usize {
        self.vantages
            .iter()
            .chain(std::iter::once(&self.campus1_v14))
            .map(|v| v.state_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_capture;
    use dropbox_analysis::groups::aggregate_households;
    use dropbox_analysis::sessions::{
        devices_per_household, holiday_dip, hourly_profiles, namespaces_per_device,
        raw_session_durations, startups_per_day,
    };
    use std::sync::OnceLock;
    use workload::FaultPlan;

    fn capture() -> &'static Capture {
        static CAP: OnceLock<Capture> = OnceLock::new();
        CAP.get_or_init(|| run_capture(0.012, 3, &FaultPlan::none(), 2))
    }

    #[test]
    fn summary_matches_materialised_analyses() {
        let cap = capture();
        let sum = CaptureSummary::compute(cap);
        for (kind, (out, v)) in VantageKind::ALL
            .iter()
            .zip(cap.vantages.iter().zip(&sum.vantages))
        {
            assert_eq!(v.name, out.dataset.name);
            assert_eq!(v.records, out.dataset.flows.len() as u64, "{kind:?}");
            assert_eq!(v.overview, out.dataset.overview(), "{kind:?}");
            assert_eq!(v.dropbox_totals, out.dataset.dropbox_totals());
            assert_eq!(v.role_breakdown, out.dataset.role_breakdown());
            assert_eq!(v.storage_servers, out.dataset.storage_servers_per_day());
            assert_eq!(
                v.startups,
                startups_per_day(&out.dataset.flows, out.dataset.days)
            );
            assert_eq!(
                v.holiday_dip,
                holiday_dip(&out.dataset.flows, out.dataset.days)
            );
            assert_eq!(v.raw_durations, raw_session_durations(&out.dataset.flows));
            let hourly = hourly_profiles(&out.dataset.flows, out.dataset.days);
            assert_eq!(v.hourly.startups, hourly.startups);
            assert_eq!(v.hourly.active, hourly.active);
            assert_eq!(v.hourly.store, hourly.store);
            assert_eq!(v.hourly.retrieve, hourly.retrieve);
        }
        // Vantage-specific statistics land exactly where specified.
        let h1 = sum.vantage(VantageKind::Home1);
        assert_eq!(
            h1.provider_series.as_ref().expect("Home 1 series"),
            &cap.vantage(VantageKind::Home1).dataset.provider_series()
        );
        for kind in [VantageKind::Home1, VantageKind::Home2] {
            let v = sum.vantage(kind);
            let flows = &cap.vantage(kind).dataset.flows;
            assert_eq!(
                v.households.as_ref().expect("home households"),
                &aggregate_households(flows)
            );
            assert_eq!(
                v.devices_per_household.as_ref().expect("home devices"),
                &devices_per_household(flows)
            );
        }
        for kind in [VantageKind::Campus1, VantageKind::Home1] {
            let v = sum.vantage(kind);
            assert_eq!(
                v.namespaces_per_device.as_ref().expect("namespaces"),
                &namespaces_per_device(&cap.vantage(kind).dataset.flows)
            );
        }
        let c2 = sum.vantage(VantageKind::Campus2);
        assert_eq!(
            c2.daily_total.as_ref().expect("daily totals"),
            &cap.vantage(VantageKind::Campus2)
                .dataset
                .daily_total_bytes()
        );
        assert!(c2.fig9.is_some() && c2.fig10.is_some());
        assert!(sum.vantage(VantageKind::Campus1).fig20.is_some());
        assert!(sum.campus1_v14.fig9.is_none());
    }

    #[test]
    fn storage_samples_follow_stream_order() {
        let cap = capture();
        let sum = CaptureSummary::compute(cap);
        for (out, v) in cap.vantages.iter().zip(&sum.vantages) {
            for tag in [StorageTag::Store, StorageTag::Retrieve] {
                let sizes: Vec<f64> = out
                    .dataset
                    .client_storage_flows()
                    .filter(|f| storage_tag(f) == tag)
                    .map(|f| f.total_bytes() as f64)
                    .collect();
                assert_eq!(v.storage.tag(tag).sizes, sizes, "{}", out.dataset.name);
                let chunks: Vec<f64> = out
                    .dataset
                    .client_storage_flows()
                    .filter(|f| storage_tag(f) == tag)
                    .map(|f| estimate_chunks(f) as f64)
                    .collect();
                assert_eq!(v.storage.tag(tag).chunks, chunks);
            }
        }
    }

    #[test]
    fn summary_is_deterministic_across_runs() {
        let cap = capture();
        let a = CaptureSummary::compute(cap);
        let b = CaptureSummary::compute(cap);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.state_bytes(), b.state_bytes());
        for (x, y) in a.vantages.iter().zip(&b.vantages) {
            assert_eq!(x.overview, y.overview);
            assert_eq!(x.raw_durations, y.raw_durations);
            assert_eq!(
                x.fig9.as_ref().map(|d| &d.store.rows),
                y.fig9.as_ref().map(|d| &d.store.rows)
            );
        }
    }
}

//! Provider-matrix experiments: competing protocol specifications driven
//! through the same household workload (the `repro --provider-matrix`
//! mode).
//!
//! The paper measures one provider; the generic sync engine lets the
//! identical Home 1 workload run against every [`dropbox::spec`] entry —
//! Dropbox itself, a no-dedup/no-delta fixed-chunk "SkyDrive-like" spec,
//! and a no-bundling per-file-commit "GDrive-like" spec — so the
//! protocol-design effects of Secs. 4.2–4.5 (dedup savings, bundling vs
//! RTT, data-center placement) emerge as *differences between columns* of
//! one experiment rather than absolute claims:
//!
//! * [`provider_matrix`] — per-spec capture runs producing storage-flow
//!   throughput CDFs and volume totals (`provider_matrix_cdf.csv`,
//!   `provider_matrix_volume.csv`),
//! * [`bundling_vs_rtt`] — a folder-upload micro-harness sweeping the
//!   storage RTT per spec, the Figs. 10–11 mechanism isolated
//!   (`provider_bundling_rtt.csv`).
//!
//! An `--access wifi|lte` override forces every household onto one
//! [`tcpmodel::AccessLink`] profile, injected ahead of the TCP model, so
//! the same matrix can be read per access technology.

use crate::report::{cdf_summary, cdfs_csv, fmt_bps, fmt_bytes, Report, TextTable};
use dnssim::DnsDirectory;
use dropbox::client::{ChunkWork, ClientVersion, SyncConfig, SyncEngine};
use dropbox::content::{Content, ContentKind};
use dropbox::spec::{self, ProviderSpec};
use dropbox::storage::ChunkStore;
use dropbox_analysis::throughput::{throughput_bps, transfer_duration};
use nettrace::{Endpoint, FlowKey, FlowRecord, Ipv4};
use simcore::stats::Ecdf;
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::{simulate, AccessLink, PathParams, TcpParams};
use tstat::Monitor;
use workload::shard::ShardPlan;
use workload::{simulate_shards, FaultPlan, SimOutput, VantageKind};

/// Parameters of one provider-matrix run.
#[derive(Clone, Copy, Debug)]
pub struct MatrixConfig {
    /// Population scale factor (same meaning as `repro --scale`).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Capture days per spec (a matrix run repeats the capture once per
    /// spec, so it defaults to a shorter window than the paper plan).
    pub days: u32,
    /// Forced access-link profile (`None` = the vantage's own mix).
    pub link: Option<&'static AccessLink>,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            scale: 0.05,
            seed: 2012,
            days: 7,
            link: None,
        }
    }
}

/// The single-capture Home 1 plan of one matrix cell: the paper plan's
/// Home 1 shard re-targeted at `spec`, truncated, and (optionally) forced
/// onto an access-link profile. Sub-shard count is inherited, so the cell
/// is byte-identical at every `--jobs` / `--hh-shards` value like any
/// other capture.
fn matrix_plan(spec: &'static ProviderSpec, cfg: &MatrixConfig) -> ShardPlan {
    let mut plan = ShardPlan::paper().truncated(cfg.days).with_protocol(spec);
    if let Some(link) = cfg.link {
        plan = plan.with_link(link);
    }
    plan.shards.retain(|s| s.kind == VantageKind::Home1);
    plan.shards[0].merge_slot = 0;
    plan
}

/// Best available server name of a flow record (DNS, SNI, then Host).
fn server_name(f: &FlowRecord) -> Option<&str> {
    f.server_fqdn
        .as_deref()
        .or(f.tls_sni.as_deref())
        .or(f.http_host.as_deref())
}

/// Storage-plane totals of one capture under one spec.
struct SpecTotals {
    store_thr: Ecdf,
    retrieve_thr: Ecdf,
    up_bytes: u64,
    down_bytes: u64,
    storage_flows: usize,
}

fn storage_totals(spec: &'static ProviderSpec, out: &SimOutput) -> SpecTotals {
    let mut store = Vec::new();
    let mut retrieve = Vec::new();
    let mut up_bytes = 0u64;
    let mut down_bytes = 0u64;
    let mut storage_flows = 0usize;
    // simlint: allow(full-materialize) — per-spec matrix cell: the storage split depends on the spec's own naming, not the shared streaming accumulators
    for f in &out.dataset.flows {
        let is_storage = server_name(f).is_some_and(|n| spec.is_storage_name(n));
        if !is_storage {
            continue;
        }
        storage_flows += 1;
        up_bytes += f.up.bytes;
        down_bytes += f.down.bytes;
        if let Some(thr) = throughput_bps(f) {
            if f.up.bytes >= f.down.bytes {
                store.push(thr);
            } else {
                retrieve.push(thr);
            }
        }
    }
    SpecTotals {
        store_thr: Ecdf::new(store),
        retrieve_thr: Ecdf::new(retrieve),
        up_bytes,
        down_bytes,
        storage_flows,
    }
}

/// Run the Home 1 workload once per provider spec and report the
/// storage-plane differences: throughput CDFs per spec plus upload and
/// download volume totals. The no-dedup/no-delta spec re-uploads what
/// Dropbox would deduplicate or delta-encode, so its upload volume reads
/// strictly higher on the same household behaviour.
pub fn provider_matrix(cfg: &MatrixConfig, jobs: usize) -> Report {
    let mut body = String::new();
    if let Some(link) = cfg.link {
        body.push_str(&format!(
            "access link forced to `{}` for every household\n\n",
            link.name
        ));
    }
    let mut volume = TextTable::new(vec![
        "provider",
        "storage flows",
        "upload",
        "download",
        "median store bps",
    ]);
    let mut all_cdfs: Vec<(String, Ecdf)> = Vec::new();
    for prov in spec::ALL {
        let plan = matrix_plan(prov, cfg);
        let mut outs = simulate_shards(&plan, cfg.scale, cfg.seed, &FaultPlan::none(), jobs);
        let out = outs.pop().expect("one capture per matrix cell");
        let t = storage_totals(prov, &out);
        body.push_str(&cdf_summary(
            &format!("{} store throughput (bit/s)", prov.name),
            &t.store_thr,
            &[],
        ));
        volume.row(vec![
            prov.slug.to_string(),
            t.storage_flows.to_string(),
            fmt_bytes(t.up_bytes),
            fmt_bytes(t.down_bytes),
            fmt_bps(t.store_thr.quantile(0.5).unwrap_or(0.0)),
        ]);
        all_cdfs.push((format!("{}-store", prov.slug), t.store_thr));
        all_cdfs.push((format!("{}-retrieve", prov.slug), t.retrieve_thr));
    }
    body.push('\n');
    body.push_str(&volume.render());
    body.push_str(
        "\nexpected shape: the no-dedup/no-delta spec uploads strictly more\n\
         bytes than Dropbox on the same households; the per-file-commit spec\n\
         trails on throughput as every chunk pays its own ack round trip.\n",
    );
    let refs: Vec<(&str, &Ecdf)> = all_cdfs.iter().map(|(l, e)| (l.as_str(), e)).collect();
    Report::new(
        "provider_matrix",
        "Competing provider specs over the same Home 1 workload",
        body,
    )
    .with_csv("provider_matrix_cdf.csv", cdfs_csv(&refs, 200))
    .with_csv("provider_matrix_volume.csv", volume.csv())
}

/// Time to upload a folder of `files` fresh files of `file_bytes` each
/// through `spec`'s real sync engine at a given storage RTT: the flows of
/// one `upload_transaction` simulated back to back over the TCP model.
/// Every file is smaller than every spec's chunk size, so the chunk count
/// is identical across specs and the measured difference is purely the
/// protocol — bundling amortises the per-chunk ack stall, per-file
/// commits pay it once per RTT.
pub fn folder_sync_secs(
    prov: &'static ProviderSpec,
    version: ClientVersion,
    files: u32,
    file_bytes: u64,
    rtt_ms: u64,
    seed: u64,
) -> f64 {
    let mut rng = Rng::new(seed);
    let mut dns = DnsDirectory::new();
    for (name, ip) in prov.dns_entries() {
        dns.register(name, ip);
    }
    let store = ChunkStore::new();
    let config = SyncConfig {
        version,
        spec: prov,
        ..SyncConfig::default()
    };
    let mut eng = SyncEngine::new(&dns, &store, config, 7);
    let mut chunks: Vec<ChunkWork> = Vec::new();
    for i in 0..files {
        let content = Content::with_chunk_size(
            seed.wrapping_add(1 + i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            file_bytes,
            ContentKind::Document,
            prov.chunk_bytes,
        );
        for (ci, &id) in content.chunk_ids().iter().enumerate() {
            chunks.push(ChunkWork {
                id,
                wire_bytes: content.wire_chunk_size(ci as u32),
                raw_bytes: content.chunk_size(ci as u32),
            });
        }
    }
    let flows = eng.upload_transaction(&chunks, 0, &mut rng, None, SimTime::from_secs(1));
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(8),
        outer_rtt: SimDuration::from_millis(rtt_ms.saturating_sub(8).max(1)),
        jitter: 0.03,
        loss_up: 0.0005,
        loss_down: 0.0005,
        up_rate: None,
        down_rate: None,
    };
    let tcp = match version {
        ClientVersion::V1_2_52 => TcpParams::era_2012_v1(),
        ClientVersion::V1_4_0 => TcpParams::era_2012_v14(),
    };
    let mut total = 0.0f64;
    for flow in &flows {
        let key = FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 2), 40_000),
            Endpoint::new(Ipv4::new(107, 22, 0, 5), flow.port),
        );
        let mut packets = Vec::new();
        simulate(
            SimTime::from_secs(1),
            key,
            &flow.dialogue,
            &path,
            &tcp,
            &mut rng,
            &mut packets,
        );
        let mut monitor = Monitor::new(true);
        if let Some(rec) = monitor.process_flow(&packets) {
            total += transfer_duration(&rec)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
        }
    }
    total
}

/// The RTT probes of the bundling sweep (ms).
pub const RTT_PROBES: [u64; 5] = [20, 50, 100, 200, 400];

/// Sweep the storage RTT per provider spec and report the folder-upload
/// time: the bundling-vs-RTT mechanism of Figs. 10–11, isolated from the
/// rest of the capture. Dropbox appears twice — v1.2.52 (pre-bundling)
/// and v1.4.0 (`store_batch`) — alongside the always-bundling and
/// never-bundling specs, so the figure shows both the historical fix and
/// the cross-provider contrast.
pub fn bundling_vs_rtt(seed: u64) -> Report {
    let files = 40u32;
    let file_bytes = 50_000u64;
    let series: Vec<(String, &'static ProviderSpec, ClientVersion)> = vec![
        (
            "dropbox-v1.2.52".into(),
            &spec::DROPBOX,
            ClientVersion::V1_2_52,
        ),
        (
            "dropbox-v1.4.0".into(),
            &spec::DROPBOX,
            ClientVersion::V1_4_0,
        ),
        (
            spec::SKYDRIVE_LIKE.slug.into(),
            &spec::SKYDRIVE_LIKE,
            ClientVersion::V1_4_0,
        ),
        (
            spec::GDRIVE_LIKE.slug.into(),
            &spec::GDRIVE_LIKE,
            ClientVersion::V1_4_0,
        ),
    ];
    let mut t = TextTable::new(vec!["series", "rtt_ms", "folder_sync_s"]);
    let mut body = format!("folder workload: {files} files x {file_bytes} B, fresh store\n\n");
    for (label, prov, version) in &series {
        let mut line = format!("{label}:");
        for rtt in RTT_PROBES {
            let secs = folder_sync_secs(prov, *version, files, file_bytes, rtt, seed);
            t.row(vec![label.clone(), rtt.to_string(), format!("{secs:.2}")]);
            line.push_str(&format!("  {rtt}ms={secs:.1}s"));
        }
        body.push_str(&line);
        body.push('\n');
    }
    body.push_str(
        "\nexpected shape: the never-bundling series degrades steepest with\n\
         RTT (one ack stall per chunk); bundling flattens the curve, which is\n\
         exactly the v1.2.52 → v1.4.0 step the paper measured.\n",
    );
    Report::new(
        "provider_bundling_rtt",
        "Folder-upload time vs storage RTT per provider spec",
        body,
    )
    .with_csv("provider_bundling_rtt.csv", t.csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_cells_are_deterministic_across_jobs_and_shards() {
        let cfg = MatrixConfig {
            scale: 0.01,
            days: 3,
            ..MatrixConfig::default()
        };
        let plan = matrix_plan(&spec::SKYDRIVE_LIKE, &cfg);
        let a = simulate_shards(&plan, cfg.scale, cfg.seed, &FaultPlan::none(), 1);
        let b = simulate_shards(
            &plan.with_sub_shards(3),
            cfg.scale,
            cfg.seed,
            &FaultPlan::none(),
            4,
        );
        let jsonl = |o: &SimOutput| -> Vec<u8> {
            let mut buf = Vec::new();
            nettrace::flowlog::write_jsonl(&mut buf, &o.dataset.flows).expect("serialise");
            buf
        };
        assert_eq!(jsonl(&a[0]), jsonl(&b[0]));
    }

    #[test]
    fn no_dedup_spec_uploads_more_than_dropbox() {
        let cfg = MatrixConfig {
            scale: 0.02,
            days: 5,
            ..MatrixConfig::default()
        };
        let up_of = |prov: &'static ProviderSpec| -> u64 {
            let plan = matrix_plan(prov, &cfg);
            let outs = simulate_shards(&plan, cfg.scale, cfg.seed, &FaultPlan::none(), 2);
            storage_totals(prov, &outs[0]).up_bytes
        };
        let dropbox = up_of(&spec::DROPBOX);
        let skydrive = up_of(&spec::SKYDRIVE_LIKE);
        assert!(dropbox > 0, "dropbox cell must produce storage traffic");
        assert!(
            skydrive > dropbox,
            "no-dedup/no-delta must re-upload what Dropbox saves: \
             {skydrive} vs {dropbox}"
        );
    }

    #[test]
    fn per_file_commits_degrade_faster_with_rtt() {
        let near = 20;
        let far = 200;
        // Many small chunks: the regime where per-chunk ack stalls, not
        // TLS setup or congestion windowing, carry the RTT dependence.
        let (files, bytes) = (60, 30_000);
        let g_near = folder_sync_secs(
            &spec::GDRIVE_LIKE,
            ClientVersion::V1_4_0,
            files,
            bytes,
            near,
            5,
        );
        let g_far = folder_sync_secs(
            &spec::GDRIVE_LIKE,
            ClientVersion::V1_4_0,
            files,
            bytes,
            far,
            5,
        );
        let d_near = folder_sync_secs(&spec::DROPBOX, ClientVersion::V1_4_0, files, bytes, near, 5);
        let d_far = folder_sync_secs(&spec::DROPBOX, ClientVersion::V1_4_0, files, bytes, far, 5);
        // Absolute RTT slope: every un-bundled chunk pays the full extra
        // round trip, while a bundle pays it once (plus a few slow-start
        // rounds), so the added seconds per added RTT must be far larger
        // without bundling.
        let g_slope = g_far - g_near;
        let d_slope = d_far - d_near;
        assert!(
            g_slope > 2.0 * d_slope,
            "never-bundling must degrade faster with RTT: gdrive +{g_slope:.2}s \
             vs dropbox-v1.4 +{d_slope:.2}s over {near}->{far} ms"
        );
    }

    #[test]
    fn bundling_report_covers_every_series_and_probe() {
        let r = bundling_vs_rtt(11);
        assert!(r.body.contains("dropbox-v1.2.52"));
        assert!(r.body.contains("gdrive_like"));
        let csv = &r.artifacts[0].1;
        assert_eq!(
            csv.lines().count(),
            1 + 4 * RTT_PROBES.len(),
            "header + series x probes"
        );
    }
}

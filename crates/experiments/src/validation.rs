//! Ground-truth scoring of the analysis methods.
//!
//! The paper validated its flow-tagging and chunk-counting heuristics in a
//! testbed (Appendix A); owning the whole substrate lets us score them
//! against every flow of the full simulation:
//!
//! * store/retrieve tagging accuracy of `f(u)`,
//! * chunk-count estimation error of the PSH method,
//! * provider/role classification consistency,
//! * deduplication and LAN-sync savings that never reach the wire.
//!
//! Scoring needs the per-flow ground truth (`FlowTruth`), which lives
//! outside the `FlowRecord` stream, so this module walks
//! [`workload::SimOutput::flows_with_truth`] — but only **once** per
//! vantage: tag scoring, chunk scoring, and user-inference observation all
//! fold in the same pass.

use crate::report::{Report, TextTable};
use crate::run::Capture;
use dropbox::FlowTruth;
use dropbox_analysis::chunks::estimate_chunks;
use dropbox_analysis::classify::{dropbox_role, storage_tag, DropboxRole, StorageTag};
use dropbox_analysis::stream::Accumulate;
use dropbox_analysis::users::{score_users, InferUsersAcc};

/// Everything `validate` needs from one vantage, gathered in one pass.
struct VantageScore {
    name: String,
    total: u64,
    tag_ok: u64,
    chunk_exact: u64,
    chunk_close: u64,
    err_sum: f64,
    inferred: Vec<Vec<u64>>,
}

fn score_vantage(out: &workload::SimOutput) -> VantageScore {
    let mut s = VantageScore {
        name: out.dataset.name.clone(),
        total: 0,
        tag_ok: 0,
        chunk_exact: 0,
        chunk_close: 0,
        err_sum: 0.0,
        inferred: Vec::new(),
    };
    let mut users = InferUsersAcc::default();
    for (f, truth) in out.flows_with_truth() {
        users.observe(f);
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            continue;
        }
        let Some(truth) = truth else { continue };
        let (true_tag, true_chunks, acked) = match truth {
            FlowTruth::Store { chunks, acked, .. } => (StorageTag::Store, *chunks, *acked),
            FlowTruth::Retrieve { chunks, .. } => (StorageTag::Retrieve, *chunks, true),
            _ => continue,
        };
        s.total += 1;
        if storage_tag(f) == true_tag {
            s.tag_ok += 1;
        }
        // The chunk estimator is only defined for acknowledged flows
        // (the paper notes the misbehaving client breaks it).
        if acked {
            let est = estimate_chunks(f);
            let err = (est as f64 - true_chunks as f64).abs();
            s.err_sum += err;
            if est == true_chunks {
                s.chunk_exact += 1;
            }
            if err <= 1.0 {
                s.chunk_close += 1;
            }
        }
    }
    s.inferred = users.finish();
    s
}

/// Score the analysis layer against generator ground truth.
pub fn validate(cap: &Capture) -> Report {
    let mut t = TextTable::new(vec![
        "Vantage",
        "storage flows",
        "tag accuracy",
        "chunk exact",
        "chunk |err|<=1",
        "mean |err|",
    ]);
    let scores: Vec<VantageScore> = cap.vantages.iter().map(score_vantage).collect();
    let mut worst_tag = 1.0f64;
    for s in &scores {
        let tagged = s.tag_ok as f64 / s.total.max(1) as f64;
        worst_tag = worst_tag.min(tagged);
        t.row(vec![
            s.name.clone(),
            s.total.to_string(),
            format!("{:.4}", tagged),
            format!("{:.4}", s.chunk_exact as f64 / s.total.max(1) as f64),
            format!("{:.4}", s.chunk_close as f64 / s.total.max(1) as f64),
            format!("{:.3}", s.err_sum / s.total.max(1) as f64),
        ]);
    }
    let mut body = t.render();
    body.push_str(&format!(
        "\nworst-case f(u) tagging accuracy: {worst_tag:.4} (paper estimates <1% error)\n"
    ));
    for out in &cap.vantages {
        body.push_str(&format!(
            "{}: {} chunk transfers served by LAN Sync (invisible at the probe)\n",
            out.dataset.name, out.lan_synced
        ));
    }
    body.push_str("\nuser-account inference from namespace lists (Sec. 2.3.1):\n");
    for (out, s) in cap.vantages.iter().zip(&scores) {
        let inferred = &s.inferred;
        // Ground truth restricted to devices the monitor actually saw.
        let seen: std::collections::BTreeSet<u64> = inferred.iter().flatten().copied().collect();
        let truth: Vec<Vec<u64>> = out
            .truth_users
            .iter()
            .map(|g| {
                g.iter()
                    .copied()
                    .filter(|d| seen.contains(d))
                    .collect::<Vec<u64>>()
            })
            .filter(|g: &Vec<u64>| !g.is_empty())
            .collect();
        let (precision, recall) = score_users(inferred, &truth);
        body.push_str(&format!(
            "  {}: {} devices, {} inferred accounts, pairwise precision {:.3} recall {:.3}\n",
            out.dataset.name,
            seen.len(),
            inferred.len(),
            precision,
            recall
        ));
    }
    Report::new(
        "validation",
        "Ground-truth scoring of the paper's inference methods",
        body,
    )
    .with_csv("validation.csv", t.csv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_capture;

    #[test]
    fn validation_scores_are_high_on_a_small_run() {
        let cap = run_capture(0.012, 11, &workload::FaultPlan::none(), 2);
        let rep = validate(&cap);
        // Extract the worst tag accuracy from the body sentinel line.
        let line = rep
            .body
            .lines()
            .find(|l| l.contains("worst-case"))
            .expect("worst-case line");
        let value: f64 = line
            .split_whitespace()
            .find_map(|w| w.parse::<f64>().ok())
            .expect("a number");
        assert!(
            value > 0.97,
            "tagging accuracy too low: {value} \n{}",
            rep.body
        );
    }
}

//! Property test: FlowRecord → JSONL → FlowRecord is the identity, for
//! arbitrary records including extreme and awkward `f64` RTT values.

use nettrace::endpoint::{Endpoint, FlowKey, Ipv4};
use nettrace::flow::{DirStats, FlowClose, FlowRecord, NotifyMeta};
use nettrace::flowlog::{read_jsonl, write_jsonl};
use simcore::json::{from_str, to_string};
use simcore::proptest::{any_bool, any_u16, any_u32, any_u64, from_fn, vec_of, Strategy};
use simcore::{prop_assert, prop_assert_eq, proptest, Rng, SimTime};
use std::io::Cursor;

fn arb_endpoint(rng: &mut Rng) -> Endpoint {
    Endpoint::new(Ipv4(rng.next_u64() as u32), rng.next_u64() as u16)
}

fn arb_dirstats(rng: &mut Rng) -> DirStats {
    DirStats {
        packets: rng.next_u64(),
        bytes: rng.next_u64(),
        psh_segments: rng.next_u64(),
        retransmissions: rng.next_u64(),
        rtx_bytes: rng.next_u64(),
        first_payload: if rng.next_u64() % 2 == 0 {
            None
        } else {
            Some(SimTime::from_micros(rng.next_u64() >> 1))
        },
        last_payload: if rng.next_u64() % 2 == 0 {
            None
        } else {
            Some(SimTime::from_micros(rng.next_u64() >> 1))
        },
    }
}

/// An RTT drawn from a pool of extreme values or a random finite float.
fn arb_rtt(rng: &mut Rng) -> Option<f64> {
    const EXTREMES: &[f64] = &[
        0.0,
        -0.0,
        5e-324, // smallest subnormal
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::EPSILON,
        95.0,
        0.1, // not exactly representable
        1e300,
        123_456_789.123_456_78,
    ];
    match rng.next_u64() % 4 {
        0 => None,
        1 => Some(EXTREMES[(rng.next_u64() as usize) % EXTREMES.len()]),
        _ => {
            // Random bit patterns, re-rolled until finite.
            loop {
                let x = f64::from_bits(rng.next_u64());
                if x.is_finite() {
                    return Some(x);
                }
            }
        }
    }
}

fn arb_string(rng: &mut Rng) -> String {
    let len = (rng.next_u64() % 12) as usize;
    (0..len)
        .map(|_| {
            // Mix ASCII, escapes-needing controls, and multi-byte chars.
            match rng.next_u64() % 8 {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\u{1}',
                4 => 'é',
                5 => '\u{1F4E6}',
                _ => (b'a' + (rng.next_u64() % 26) as u8) as char,
            }
        })
        .collect()
}

fn arb_opt_string(rng: &mut Rng) -> Option<String> {
    if rng.next_u64() % 2 == 0 {
        None
    } else {
        Some(arb_string(rng))
    }
}

fn arb_record(rng: &mut Rng) -> FlowRecord {
    FlowRecord {
        key: FlowKey::new(arb_endpoint(rng), arb_endpoint(rng)),
        first_syn: SimTime::from_micros(rng.next_u64() >> 1),
        last_packet: SimTime::from_micros(rng.next_u64() >> 1),
        up: arb_dirstats(rng),
        down: arb_dirstats(rng),
        min_rtt_ms: arb_rtt(rng),
        rtt_samples: rng.next_u64() as u32,
        tls_sni: arb_opt_string(rng),
        tls_certificate_cn: arb_opt_string(rng),
        http_host: arb_opt_string(rng),
        server_fqdn: arb_opt_string(rng),
        notify: if rng.next_u64() % 3 == 0 {
            Some(NotifyMeta {
                host_int: rng.next_u64(),
                namespaces: (0..rng.next_u64() % 5).map(|_| rng.next_u64()).collect(),
            })
        } else {
            None
        },
        close: match rng.next_u64() % 3 {
            0 => FlowClose::Fin,
            1 => FlowClose::Rst,
            _ => FlowClose::Timeout,
        },
        aborted: rng.next_u64() % 2 == 0,
    }
}

fn records_equal(a: &FlowRecord, b: &FlowRecord) -> bool {
    a.key == b.key
        && a.first_syn == b.first_syn
        && a.last_packet == b.last_packet
        && a.up == b.up
        && a.down == b.down
        // Bit-level equality so -0.0 vs 0.0 and NaN-free exactness hold.
        && a.min_rtt_ms.map(f64::to_bits) == b.min_rtt_ms.map(f64::to_bits)
        && a.rtt_samples == b.rtt_samples
        && a.tls_sni == b.tls_sni
        && a.tls_certificate_cn == b.tls_certificate_cn
        && a.http_host == b.http_host
        && a.server_fqdn == b.server_fqdn
        && a.notify == b.notify
        && a.close == b.close
        && a.aborted == b.aborted
}

proptest! {
    /// A batch of arbitrary records survives write_jsonl → read_jsonl
    /// bit-exactly, including extreme f64 RTTs and u64 counters beyond
    /// 2^53 (which a float-only number model would corrupt).
    #[test]
    fn jsonl_roundtrip_is_identity(seed in any_u64(), n in 1usize..8) {
        let mut rng = Rng::new(seed);
        let flows: Vec<FlowRecord> = (0..n).map(|_| arb_record(&mut rng)).collect();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &flows).unwrap();
        let parsed = read_jsonl(Cursor::new(buf)).unwrap();
        prop_assert_eq!(parsed.len(), flows.len());
        for (a, b) in flows.iter().zip(parsed.iter()) {
            prop_assert!(records_equal(a, b), "mismatch:\n{a:#?}\nvs\n{b:#?}");
        }
    }

    /// Single-record JSON round-trip through the string form directly.
    #[test]
    fn json_string_roundtrip(seed in any_u64()) {
        let mut rng = Rng::new(seed);
        let rec = arb_record(&mut rng);
        let s = to_string(&rec);
        let back: FlowRecord = from_str(&s).unwrap();
        prop_assert!(records_equal(&rec, &back), "mismatch for {s}");
    }
}

// Silence unused-import warnings for harness pieces exercised elsewhere.
#[allow(unused_imports)]
use simcore::proptest::FromFn as _;

#[test]
fn extreme_rtts_roundtrip_exactly() {
    for rtt in [
        5e-324,
        f64::MAX,
        f64::MIN_POSITIVE,
        -0.0,
        0.1,
        1e300,
        123_456_789.123_456_78,
    ] {
        let mut rng = Rng::new(7);
        let mut rec = arb_record(&mut rng);
        rec.min_rtt_ms = Some(rtt);
        let s = to_string(&rec);
        let back: FlowRecord = from_str(&s).unwrap();
        assert_eq!(
            back.min_rtt_ms.map(f64::to_bits),
            Some(rtt.to_bits()),
            "rtt {rtt:?} corrupted through {s}"
        );
    }
}

// Keep the imported-but-unused strategy helpers referenced so the file
// doubles as a compile check of the public harness surface.
#[test]
fn harness_surface_compiles() {
    let mut rng = Rng::new(1);
    let _ = any_bool().sample(&mut rng);
    let _ = any_u16().sample(&mut rng);
    let _ = any_u32().sample(&mut rng);
    let _ = vec_of(0u8..10, 0..4).sample(&mut rng);
    let _ = from_fn(|r: &mut Rng| r.next_u64() % 3).sample(&mut rng);
}

//! libpcap file writer.
//!
//! Serialises simulated packet streams into standard `.pcap` files (the
//! classic microsecond-resolution format, magic `0xa1b2c3d4`, LINKTYPE_ETHERNET)
//! so that traces can be inspected with Wireshark/tcpdump. Ethernet, IPv4
//! and TCP headers are synthesised from the packet metadata; payload bytes
//! are written as zeros of the correct length (the monitor never reads
//! payload contents, matching the paper's privacy constraints).

use crate::packet::Packet;
use bytes::{BufMut, BytesMut};
use std::io::{self, Write};

/// Classic pcap magic (microsecond timestamps).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;
/// Maximum bytes captured per packet.
const SNAPLEN: u32 = 65_535;

/// Streaming pcap writer over any [`Write`] sink.
pub struct PcapWriter<W: Write> {
    sink: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the pcap global header.
    pub fn new(mut sink: W) -> io::Result<Self> {
        let mut hdr = BytesMut::with_capacity(24);
        hdr.put_u32_le(PCAP_MAGIC);
        hdr.put_u16_le(2); // version major
        hdr.put_u16_le(4); // version minor
        hdr.put_i32_le(0); // thiszone
        hdr.put_u32_le(0); // sigfigs
        hdr.put_u32_le(SNAPLEN);
        hdr.put_u32_le(LINKTYPE_ETHERNET);
        sink.write_all(&hdr)?;
        Ok(PcapWriter {
            sink,
            packets_written: 0,
        })
    }

    /// Append one packet.
    pub fn write_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let frame = synthesize_frame(pkt);
        let mut rec = BytesMut::with_capacity(16 + frame.len());
        let ts = pkt.ts.micros();
        rec.put_u32_le((ts / 1_000_000) as u32);
        rec.put_u32_le((ts % 1_000_000) as u32);
        rec.put_u32_le(frame.len() as u32);
        rec.put_u32_le(frame.len() as u32);
        rec.extend_from_slice(&frame);
        self.sink.write_all(&rec)?;
        self.packets_written += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Build an Ethernet + IPv4 + TCP frame for a simulated packet.
fn synthesize_frame(pkt: &Packet) -> Vec<u8> {
    let payload_len = pkt.payload_len as usize;
    let ip_total = 20 + 20 + payload_len;
    let mut buf = BytesMut::with_capacity(14 + ip_total);

    // Ethernet: synthetic locally-administered MACs derived from the IPs.
    let src_oct = pkt.src.ip.octets();
    let dst_oct = pkt.dst.ip.octets();
    buf.put_slice(&[0x02, 0x00, dst_oct[0], dst_oct[1], dst_oct[2], dst_oct[3]]);
    buf.put_slice(&[0x02, 0x00, src_oct[0], src_oct[1], src_oct[2], src_oct[3]]);
    buf.put_u16(0x0800); // IPv4

    // IPv4 header (no options).
    let ihl_ver = 0x45u8;
    buf.put_u8(ihl_ver);
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_total as u16);
    buf.put_u16(0); // identification
    buf.put_u16(0x4000); // don't fragment
    buf.put_u8(64); // TTL
    buf.put_u8(6); // TCP
    let cksum_pos = buf.len();
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&src_oct);
    buf.put_slice(&dst_oct);
    // IPv4 header checksum over the 20 header bytes.
    let ip_start = 14;
    let cksum = ipv4_checksum(&buf[ip_start..ip_start + 20]);
    buf[cksum_pos..cksum_pos + 2].copy_from_slice(&cksum.to_be_bytes());

    // TCP header (no options; checksum left zero — tools tolerate it and we
    // document the trace as synthetic).
    buf.put_u16(pkt.src.port);
    buf.put_u16(pkt.dst.port);
    buf.put_u32(pkt.seq);
    buf.put_u32(pkt.ack_no);
    buf.put_u8(0x50); // data offset = 5 words
    buf.put_u8(pkt.flags.0);
    buf.put_u16(65_535); // window
    buf.put_u16(0); // checksum
    buf.put_u16(0); // urgent pointer

    buf.resize(buf.len() + payload_len, 0);
    buf.to_vec()
}

/// RFC 1071 checksum over a header.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for pair in header.chunks(2) {
        let word = if pair.len() == 2 {
            u16::from_be_bytes([pair[0], pair[1]])
        } else {
            u16::from_be_bytes([pair[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, Ipv4};
    use crate::packet::TcpFlags;
    use simcore::SimTime;

    fn sample_packet(len: u32) -> Packet {
        Packet {
            ts: SimTime::from_micros(1_234_567),
            src: Endpoint::new(Ipv4::new(10, 1, 2, 3), 50_000),
            dst: Endpoint::new(Ipv4::new(199, 47, 217, 8), 443),
            seq: 1000,
            ack_no: 2000,
            flags: TcpFlags::PSH.union(TcpFlags::ACK),
            payload_len: len,
            marker: None,
        }
    }

    #[test]
    fn global_header_format() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE_ETHERNET);
    }

    #[test]
    fn packet_record_lengths() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packet(100)).unwrap();
        assert_eq!(w.packets_written(), 1);
        let bytes = w.finish().unwrap();
        // 24 global + 16 record header + 54 headers + 100 payload.
        assert_eq!(bytes.len(), 24 + 16 + 54 + 100);
        // Record header carries the timestamp split into s/us.
        let sec = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let usec = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        assert_eq!(sec, 1);
        assert_eq!(usec, 234_567);
    }

    #[test]
    fn ipv4_checksum_validates() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packet(0)).unwrap();
        let bytes = w.finish().unwrap();
        let ip_header = &bytes[24 + 16 + 14..24 + 16 + 14 + 20];
        // A correct header checksums to zero when the checksum field is
        // included.
        let mut sum = 0u32;
        for pair in ip_header.chunks(2) {
            sum += u16::from_be_bytes([pair[0], pair[1]]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(sum as u16, 0xffff);
    }

    #[test]
    fn tcp_ports_serialized_big_endian() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packet(0)).unwrap();
        let bytes = w.finish().unwrap();
        let tcp = &bytes[24 + 16 + 34..];
        assert_eq!(u16::from_be_bytes([tcp[0], tcp[1]]), 50_000);
        assert_eq!(u16::from_be_bytes([tcp[2], tcp[3]]), 443);
        assert_eq!(tcp[13], TcpFlags::PSH.union(TcpFlags::ACK).0);
    }
}

//! libpcap file writer.
//!
//! Serialises simulated packet streams into standard `.pcap` files (the
//! classic microsecond-resolution format, magic `0xa1b2c3d4`, LINKTYPE_ETHERNET)
//! so that traces can be inspected with Wireshark/tcpdump. Ethernet, IPv4
//! and TCP headers are synthesised from the packet metadata; payload bytes
//! are written as zeros of the correct length (the monitor never reads
//! payload contents, matching the paper's privacy constraints).

use crate::packet::Packet;
use std::io::{self, Write};

/// Classic pcap magic (microsecond timestamps).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;
/// Maximum bytes captured per packet.
const SNAPLEN: u32 = 65_535;

/// Byte-appending helpers on `Vec<u8>`, covering the subset of the
/// `bytes::BufMut` API this module needs.
trait PutBytes {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_i32_le(&mut self, v: i32);
    fn put_slice(&mut self, v: &[u8]);
}

impl PutBytes for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Streaming pcap writer over any [`Write`] sink.
pub struct PcapWriter<W: Write> {
    sink: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the pcap global header.
    pub fn new(mut sink: W) -> io::Result<Self> {
        let mut hdr = Vec::with_capacity(24);
        hdr.put_u32_le(PCAP_MAGIC);
        hdr.put_u16_le(2); // version major
        hdr.put_u16_le(4); // version minor
        hdr.put_i32_le(0); // thiszone
        hdr.put_u32_le(0); // sigfigs
        hdr.put_u32_le(SNAPLEN);
        hdr.put_u32_le(LINKTYPE_ETHERNET);
        sink.write_all(&hdr)?;
        Ok(PcapWriter {
            sink,
            packets_written: 0,
        })
    }

    /// Append one packet.
    pub fn write_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let frame = synthesize_frame(pkt);
        let mut rec = Vec::with_capacity(16 + frame.len());
        let ts = pkt.ts.micros();
        rec.put_u32_le((ts / 1_000_000) as u32);
        rec.put_u32_le((ts % 1_000_000) as u32);
        rec.put_u32_le(frame.len() as u32);
        rec.put_u32_le(frame.len() as u32);
        rec.extend_from_slice(&frame);
        self.sink.write_all(&rec)?;
        self.packets_written += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Build an Ethernet + IPv4 + TCP frame for a simulated packet.
fn synthesize_frame(pkt: &Packet) -> Vec<u8> {
    let payload_len = pkt.payload_len as usize;
    let ip_total = 20 + 20 + payload_len;
    let mut buf = Vec::with_capacity(14 + ip_total);

    // Ethernet: synthetic locally-administered MACs derived from the IPs.
    let src_oct = pkt.src.ip.octets();
    let dst_oct = pkt.dst.ip.octets();
    buf.put_slice(&[0x02, 0x00, dst_oct[0], dst_oct[1], dst_oct[2], dst_oct[3]]);
    buf.put_slice(&[0x02, 0x00, src_oct[0], src_oct[1], src_oct[2], src_oct[3]]);
    buf.put_u16(0x0800); // IPv4

    // IPv4 header (no options).
    let ihl_ver = 0x45u8;
    buf.put_u8(ihl_ver);
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_total as u16);
    buf.put_u16(0); // identification
    buf.put_u16(0x4000); // don't fragment
    buf.put_u8(64); // TTL
    buf.put_u8(6); // TCP
    let ip_cksum_pos = buf.len();
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&src_oct);
    buf.put_slice(&dst_oct);
    // IPv4 header checksum over the 20 header bytes.
    let ip_start = 14;
    let cksum = rfc1071_checksum(&buf[ip_start..ip_start + 20]);
    buf[ip_cksum_pos..ip_cksum_pos + 2].copy_from_slice(&cksum.to_be_bytes());

    // TCP header (no options).
    let tcp_start = buf.len();
    buf.put_u16(pkt.src.port);
    buf.put_u16(pkt.dst.port);
    buf.put_u32(pkt.seq);
    buf.put_u32(pkt.ack_no);
    buf.put_u8(0x50); // data offset = 5 words
    buf.put_u8(pkt.flags.0);
    buf.put_u16(65_535); // window
    let tcp_cksum_pos = buf.len();
    buf.put_u16(0); // checksum placeholder
    buf.put_u16(0); // urgent pointer

    buf.resize(buf.len() + payload_len, 0);

    // TCP checksum over pseudo-header + TCP header + payload. The payload
    // is all zeros, so it only lengthens the range, never the sum.
    let tcp_len = 20 + payload_len;
    let mut pseudo = Vec::with_capacity(12);
    pseudo.put_slice(&src_oct);
    pseudo.put_slice(&dst_oct);
    pseudo.put_u8(0);
    pseudo.put_u8(6); // TCP
    pseudo.put_u16(tcp_len as u16);
    pseudo.extend_from_slice(&buf[tcp_start..]);
    let tcp_cksum = rfc1071_checksum(&pseudo);
    buf[tcp_cksum_pos..tcp_cksum_pos + 2].copy_from_slice(&tcp_cksum.to_be_bytes());

    buf
}

/// RFC 1071 ones-complement checksum over a byte range.
fn rfc1071_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    for pair in data.chunks(2) {
        let word = if pair.len() == 2 {
            u16::from_be_bytes([pair[0], pair[1]])
        } else {
            u16::from_be_bytes([pair[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, Ipv4};
    use crate::packet::TcpFlags;
    use simcore::SimTime;

    fn sample_packet(len: u32) -> Packet {
        Packet {
            ts: SimTime::from_micros(1_234_567),
            src: Endpoint::new(Ipv4::new(10, 1, 2, 3), 50_000),
            dst: Endpoint::new(Ipv4::new(199, 47, 217, 8), 443),
            seq: 1000,
            ack_no: 2000,
            flags: TcpFlags::PSH.union(TcpFlags::ACK),
            payload_len: len,
            marker: None,
        }
    }

    /// Ones-complement sum including the checksum field: 0xffff iff valid.
    fn verify_sum(data: &[u8]) -> u16 {
        let mut sum = 0u32;
        for pair in data.chunks(2) {
            let word = if pair.len() == 2 {
                u16::from_be_bytes([pair[0], pair[1]])
            } else {
                u16::from_be_bytes([pair[0], 0])
            };
            sum += word as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        sum as u16
    }

    #[test]
    fn global_header_golden_bytes() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        // Little-endian classic pcap header, byte for byte: magic, v2.4,
        // thiszone 0, sigfigs 0, snaplen 65535, linktype Ethernet.
        let golden: [u8; 24] = [
            0xd4, 0xc3, 0xb2, 0xa1, // magic 0xa1b2c3d4 LE
            0x02, 0x00, // version major 2
            0x04, 0x00, // version minor 4
            0x00, 0x00, 0x00, 0x00, // thiszone
            0x00, 0x00, 0x00, 0x00, // sigfigs
            0xff, 0xff, 0x00, 0x00, // snaplen 65535
            0x01, 0x00, 0x00, 0x00, // LINKTYPE_ETHERNET
        ];
        assert_eq!(bytes.as_slice(), &golden);
    }

    #[test]
    fn packet_record_lengths() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packet(100)).unwrap();
        assert_eq!(w.packets_written(), 1);
        let bytes = w.finish().unwrap();
        // 24 global + 16 record header + 54 headers + 100 payload.
        assert_eq!(bytes.len(), 24 + 16 + 54 + 100);
        // Record header carries the timestamp split into s/us.
        let sec = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let usec = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        assert_eq!(sec, 1);
        assert_eq!(usec, 234_567);
    }

    #[test]
    fn ipv4_checksum_validates() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packet(0)).unwrap();
        let bytes = w.finish().unwrap();
        let ip_header = &bytes[24 + 16 + 14..24 + 16 + 14 + 20];
        // A correct header checksums to 0xffff when the checksum field is
        // included in the sum.
        assert_eq!(verify_sum(ip_header), 0xffff);
    }

    #[test]
    fn tcp_checksum_validates_over_pseudo_header() {
        for payload in [0u32, 1, 100, 1460] {
            let mut w = PcapWriter::new(Vec::new()).unwrap();
            w.write_packet(&sample_packet(payload)).unwrap();
            let bytes = w.finish().unwrap();
            let frame = &bytes[24 + 16..];
            let src = &frame[26..30];
            let dst = &frame[30..34];
            let tcp_and_payload = &frame[34..];
            let mut pseudo = Vec::new();
            pseudo.extend_from_slice(src);
            pseudo.extend_from_slice(dst);
            pseudo.push(0);
            pseudo.push(6);
            pseudo.extend_from_slice(&(tcp_and_payload.len() as u16).to_be_bytes());
            pseudo.extend_from_slice(tcp_and_payload);
            assert_eq!(verify_sum(&pseudo), 0xffff, "payload_len={payload}");
        }
    }

    #[test]
    fn rfc1071_known_vector() {
        // Example from RFC 1071 Sec. 3: the words 0x0001 0xf203 0xf4f5
        // 0xf6f7 sum to 0xddf2 (with carry folded); checksum is the
        // complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(rfc1071_checksum(&data), !0xddf2);
    }

    #[test]
    fn tcp_ports_serialized_big_endian() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packet(0)).unwrap();
        let bytes = w.finish().unwrap();
        let tcp = &bytes[24 + 16 + 34..];
        assert_eq!(u16::from_be_bytes([tcp[0], tcp[1]]), 50_000);
        assert_eq!(u16::from_be_bytes([tcp[2], tcp[3]]), 443);
        assert_eq!(tcp[13], TcpFlags::PSH.union(TcpFlags::ACK).0);
    }
}

//! The Tstat-style per-flow record.
//!
//! One [`FlowRecord`] is exported per observed TCP connection, carrying the
//! metrics the paper's analysis consumes (a subset of Tstat's ~100 TCP-log
//! columns, plus the Dropbox-specific extensions the authors added: TLS
//! server names, DNS FQDN labels, and notification-payload fields). The
//! record converts to and from JSON via `simcore::json`; the experiment
//! harness exports JSON-lines files mirroring the anonymised traces the
//! authors published.

use crate::endpoint::FlowKey;
use simcore::json::{FromJson, Json, JsonError, ToJson};
use simcore::{SimDuration, SimTime};

/// Per-direction packet/byte counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Segments observed (including pure ACKs and control segments).
    pub packets: u64,
    /// Payload bytes (TCP payload only, headers excluded).
    pub bytes: u64,
    /// Data segments with the PSH flag set.
    pub psh_segments: u64,
    /// Retransmitted data segments.
    pub retransmissions: u64,
    /// Payload bytes carried by retransmitted segments. `bytes` counts
    /// unique payload only, so goodput math uses `bytes` directly and
    /// `bytes + rtx_bytes` gives the wire volume.
    pub rtx_bytes: u64,
    /// Timestamp of the first payload-carrying segment.
    pub first_payload: Option<SimTime>,
    /// Timestamp of the last payload-carrying segment.
    pub last_payload: Option<SimTime>,
}

impl ToJson for DirStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("packets", self.packets.to_json()),
            ("bytes", self.bytes.to_json()),
            ("psh_segments", self.psh_segments.to_json()),
            ("retransmissions", self.retransmissions.to_json()),
            ("rtx_bytes", self.rtx_bytes.to_json()),
            ("first_payload", self.first_payload.to_json()),
            ("last_payload", self.last_payload.to_json()),
        ])
    }
}

impl FromJson for DirStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(DirStats {
            packets: v.field("packets")?,
            bytes: v.field("bytes")?,
            psh_segments: v.field("psh_segments")?,
            retransmissions: v.field("retransmissions")?,
            // Absent in logs written before fault support: default to zero.
            rtx_bytes: v.field_or("rtx_bytes", 0)?,
            first_payload: v.field("first_payload")?,
            last_payload: v.field("last_payload")?,
        })
    }
}

/// Dropbox-specific notification metadata (cleartext, Sec. 2.3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotifyMeta {
    /// Device identifier observed in notification requests.
    pub host_int: u64,
    /// Last namespace list observed on this flow.
    pub namespaces: Vec<u64>,
}

impl ToJson for NotifyMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("host_int", self.host_int.to_json()),
            ("namespaces", self.namespaces.to_json()),
        ])
    }
}

impl FromJson for NotifyMeta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NotifyMeta {
            host_int: v.field("host_int")?,
            namespaces: v.field("namespaces")?,
        })
    }
}

/// How the connection ended, as visible on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClose {
    /// Orderly FIN exchange.
    Fin,
    /// Reset.
    Rst,
    /// Still open when the capture (or flow timeout) ended.
    Timeout,
}

impl ToJson for FlowClose {
    fn to_json(&self) -> Json {
        let name = match self {
            FlowClose::Fin => "Fin",
            FlowClose::Rst => "Rst",
            FlowClose::Timeout => "Timeout",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for FlowClose {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => match s.as_str() {
                "Fin" => Ok(FlowClose::Fin),
                "Rst" => Ok(FlowClose::Rst),
                "Timeout" => Ok(FlowClose::Timeout),
                other => Err(JsonError::new(format!(
                    "unknown FlowClose variant `{other}`"
                ))),
            },
            other => Err(JsonError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

/// A reconstructed TCP flow with the monitor's measurements.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// Client and server endpoints (client address anonymised on export).
    pub key: FlowKey,
    /// Time of the first SYN from the client.
    pub first_syn: SimTime,
    /// Time of the last packet in either direction.
    pub last_packet: SimTime,
    /// Client → server direction counters.
    pub up: DirStats,
    /// Server → client direction counters.
    pub down: DirStats,
    /// Minimum external RTT (probe ↔ server) in milliseconds, when at least
    /// one sample was obtained.
    pub min_rtt_ms: Option<f64>,
    /// Number of valid RTT samples (the paper requires ≥ 10 for Fig. 6).
    pub rtt_samples: u32,
    /// Server name from the TLS SNI extension, if the flow carried TLS.
    pub tls_sni: Option<String>,
    /// Certificate common name from the TLS handshake.
    pub tls_certificate_cn: Option<String>,
    /// Host header of cleartext HTTP, if any.
    pub http_host: Option<String>,
    /// Server FQDN obtained by correlating DNS responses with the server
    /// address ("DNS to the Rescue" labelling, Sec. 3.1).
    pub server_fqdn: Option<String>,
    /// Notification metadata when the flow is a notification long-poll.
    pub notify: Option<NotifyMeta>,
    /// How the flow terminated.
    pub close: FlowClose,
    /// Whether the flow looks cut mid-transfer: it ended in an RST while
    /// the last payload segment lacked a PSH flag (application writes end
    /// with PSH, so a missing one means the write never finished). Idle
    /// NAT resets after complete writes are not flagged.
    pub aborted: bool,
}

impl ToJson for FlowRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("key", self.key.to_json()),
            ("first_syn", self.first_syn.to_json()),
            ("last_packet", self.last_packet.to_json()),
            ("up", self.up.to_json()),
            ("down", self.down.to_json()),
            ("min_rtt_ms", self.min_rtt_ms.to_json()),
            ("rtt_samples", self.rtt_samples.to_json()),
            ("tls_sni", self.tls_sni.to_json()),
            ("tls_certificate_cn", self.tls_certificate_cn.to_json()),
            ("http_host", self.http_host.to_json()),
            ("server_fqdn", self.server_fqdn.to_json()),
            ("notify", self.notify.to_json()),
            ("close", self.close.to_json()),
            ("aborted", self.aborted.to_json()),
        ])
    }
}

impl FromJson for FlowRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FlowRecord {
            key: v.field("key")?,
            first_syn: v.field("first_syn")?,
            last_packet: v.field("last_packet")?,
            up: v.field("up")?,
            down: v.field("down")?,
            min_rtt_ms: v.field("min_rtt_ms")?,
            rtt_samples: v.field("rtt_samples")?,
            tls_sni: v.field("tls_sni")?,
            tls_certificate_cn: v.field("tls_certificate_cn")?,
            http_host: v.field("http_host")?,
            server_fqdn: v.field("server_fqdn")?,
            notify: v.field("notify")?,
            close: v.field("close")?,
            // Absent in logs written before fault support: default to false.
            aborted: v.field_or("aborted", false)?,
        })
    }
}

impl FlowRecord {
    /// Flow duration from first SYN to last packet.
    pub fn duration(&self) -> SimDuration {
        self.last_packet.saturating_since(self.first_syn)
    }

    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.up.bytes + self.down.bytes
    }

    /// Best server name available for classification, in the priority order
    /// the paper uses: DNS FQDN, then TLS SNI, then certificate CN, then
    /// the HTTP Host header.
    pub fn server_name(&self) -> Option<&str> {
        self.server_fqdn
            .as_deref()
            .or(self.tls_sni.as_deref())
            .or(self.tls_certificate_cn.as_deref())
            .or(self.http_host.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, Ipv4};

    fn record() -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
                Endpoint::new(Ipv4::new(199, 47, 216, 10), 443),
            ),
            first_syn: SimTime::from_secs(100),
            last_packet: SimTime::from_secs(160),
            up: DirStats::default(),
            down: DirStats::default(),
            min_rtt_ms: Some(95.0),
            rtt_samples: 12,
            tls_sni: Some("client-lb.dropbox.com".into()),
            tls_certificate_cn: Some("*.dropbox.com".into()),
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn duration_and_totals() {
        let mut r = record();
        r.up.bytes = 1000;
        r.down.bytes = 5000;
        assert_eq!(r.duration().secs(), 60);
        assert_eq!(r.total_bytes(), 6000);
    }

    #[test]
    fn server_name_priority() {
        let mut r = record();
        assert_eq!(r.server_name(), Some("client-lb.dropbox.com"));
        r.server_fqdn = Some("client1.dropbox.com".into());
        assert_eq!(r.server_name(), Some("client1.dropbox.com"));
        r.server_fqdn = None;
        r.tls_sni = None;
        assert_eq!(r.server_name(), Some("*.dropbox.com"));
        r.tls_certificate_cn = None;
        assert_eq!(r.server_name(), None);
    }
}

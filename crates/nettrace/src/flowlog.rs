//! Flow-log serialisation: the anonymised per-flow export format.
//!
//! The paper's authors published their flow measurements as anonymised
//! logs (`http://traces.simpleweb.org/dropbox/`); this module is the
//! equivalent for the simulated captures — JSON-lines, one
//! [`FlowRecord`] per line.
//!
//! The streaming forms are primary: [`JsonlWriter`] is a [`FlowSink`]
//! that serialises each record as it arrives, and [`JsonlReader`] is an
//! iterator that parses one record per line, so an on-disk capture can
//! be re-analysed without ever materialising the full record vector.
//! [`write_jsonl`]/[`read_jsonl`] are the whole-slice wrappers over
//! them, byte- and error-compatible with the historical helpers.

use crate::flow::FlowRecord;
use crate::sink::FlowSink;
use std::io::{self, BufRead, Write};

/// Streaming JSON-lines writer: a [`FlowSink`] that serialises each
/// accepted record immediately. I/O errors are latched (a sink cannot
/// return them) — check [`JsonlWriter::into_result`] after the stream
/// ends; records accepted after an error are dropped.
pub struct JsonlWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
    records: u64,
}

impl<W: Write> JsonlWriter<W> {
    /// Wrap a byte sink (use a `BufWriter` for files).
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            error: None,
            records: 0,
        }
    }

    /// Number of records serialised so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finish the stream: the first latched I/O error, or the inner
    /// writer on success.
    pub fn into_result(self) -> io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }

    fn write_record(&mut self, flow: &FlowRecord) -> io::Result<()> {
        let line = simcore::json::to_string(flow);
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")
    }
}

impl<W: Write> FlowSink for JsonlWriter<W> {
    fn accept(&mut self, flow: FlowRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.write_record(&flow) {
            self.error = Some(e);
        } else {
            self.records += 1;
        }
    }
}

/// Streaming JSON-lines reader: yields one [`FlowRecord`] per non-blank
/// line. Malformed records surface as `InvalidData` errors naming the
/// physical (1-based) line, counting blanks — identical to
/// [`read_jsonl`]'s reporting.
pub struct JsonlReader<R: BufRead> {
    lines: std::iter::Enumerate<io::Lines<R>>,
}

impl<R: BufRead> JsonlReader<R> {
    /// Wrap a buffered byte source.
    pub fn new(source: R) -> Self {
        JsonlReader {
            lines: source.lines().enumerate(),
        }
    }
}

impl<R: BufRead> Iterator for JsonlReader<R> {
    type Item = io::Result<FlowRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (idx, line) = self.lines.next()?;
            let line = match line {
                Ok(l) => l,
                Err(e) => return Some(Err(e)),
            };
            if line.trim().is_empty() {
                continue;
            }
            return Some(simcore::json::from_str(&line).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", idx + 1))
            }));
        }
    }
}

/// Write records as JSON-lines.
pub fn write_jsonl<W: Write>(sink: W, flows: &[FlowRecord]) -> io::Result<()> {
    let mut writer = JsonlWriter::new(sink);
    for f in flows {
        writer.write_record(f)?;
    }
    Ok(())
}

/// Read records from JSON-lines, skipping blank lines. Fails on the first
/// malformed record, reporting its line number.
pub fn read_jsonl<R: BufRead>(source: R) -> io::Result<Vec<FlowRecord>> {
    JsonlReader::new(source).collect()
}

/// Anonymise client addresses in place: replaces each distinct client
/// address with a sequential identifier in `10.0.0.0/8`, preserving
/// household groupings but not the original numbering (the paper's probes
/// exported anonymised addresses for the same reason).
pub fn anonymise_clients(flows: &mut [FlowRecord]) {
    use crate::endpoint::Ipv4;
    use std::collections::BTreeMap;
    let mut map: BTreeMap<Ipv4, Ipv4> = BTreeMap::new();
    let mut next: u32 = 1;
    for f in flows {
        let anon = *map.entry(f.key.client.ip).or_insert_with(|| {
            let ip = Ipv4(0x0A00_0000 | next);
            next += 1;
            ip
        });
        f.key.client.ip = anon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, FlowKey, Ipv4};
    use crate::flow::{DirStats, FlowClose};
    use simcore::SimTime;

    fn record(client: Ipv4) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(client, 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::from_secs(10),
            last_packet: SimTime::from_secs(20),
            up: DirStats {
                bytes: 100,
                ..DirStats::default()
            },
            down: DirStats {
                bytes: 4_200,
                ..DirStats::default()
            },
            min_rtt_ms: Some(92.5),
            rtt_samples: 11,
            tls_sni: Some("dl-client1.dropbox.com".into()),
            tls_certificate_cn: Some("*.dropbox.com".into()),
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let flows = vec![
            record(Ipv4::new(87, 1, 2, 3)),
            record(Ipv4::new(87, 1, 2, 4)),
        ];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &flows).unwrap();
        let parsed = read_jsonl(io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].key, flows[0].key);
        assert_eq!(parsed[0].min_rtt_ms, flows[0].min_rtt_ms);
        assert_eq!(parsed[1].down.bytes, 4_200);
    }

    #[test]
    fn reader_skips_blank_lines_and_reports_errors() {
        let input = "\n\n{not json}\n";
        let err = read_jsonl(io::Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn reader_reports_one_based_line_for_bad_record_mid_file() {
        // A valid record, a blank line, then a record with a missing field:
        // the error must name the physical (1-based) line, counting blanks.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[record(Ipv4::new(87, 1, 2, 3))]).unwrap();
        let mut input = String::from_utf8(buf).unwrap();
        input.push('\n');
        input.push_str("{\"key\":null}\n");
        let err = read_jsonl(io::Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reader_accepts_pre_fault_schema_lines() {
        // Logs written before the fault-injection fields existed carry
        // neither per-direction `rtx_bytes` nor the flow-level `aborted`
        // marker; they must parse with both defaulted to zero/false.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[record(Ipv4::new(87, 1, 2, 3))]).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let old = line
            .replace("\"rtx_bytes\":0,", "")
            .replace(",\"aborted\":false", "");
        assert!(!old.contains("rtx_bytes") && !old.contains("aborted"));
        let parsed = read_jsonl(io::Cursor::new(old)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].up.rtx_bytes, 0);
        assert_eq!(parsed[0].down.rtx_bytes, 0);
        assert!(!parsed[0].aborted);
        assert_eq!(parsed[0].down.bytes, 4_200);
    }

    #[test]
    fn streaming_writer_matches_whole_slice_writer_byte_for_byte() {
        let flows = vec![
            record(Ipv4::new(87, 1, 2, 3)),
            record(Ipv4::new(87, 1, 2, 4)),
        ];
        let mut whole = Vec::new();
        write_jsonl(&mut whole, &flows).unwrap();
        let mut writer = JsonlWriter::new(Vec::new());
        for f in &flows {
            writer.accept(f.clone());
        }
        assert_eq!(writer.records(), 2);
        let streamed = writer.into_result().unwrap();
        assert_eq!(streamed, whole);
    }

    #[test]
    fn streaming_reader_yields_records_lazily_with_line_errors() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[record(Ipv4::new(87, 1, 2, 3))]).unwrap();
        let mut input = String::from_utf8(buf).unwrap();
        input.push('\n');
        input.push_str("{not json}\n");
        let mut reader = JsonlReader::new(io::Cursor::new(input));
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.down.bytes, 4_200);
        // The blank line is skipped; the malformed third line errors.
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(reader.next().is_none());
    }

    #[test]
    fn anonymisation_is_consistent_and_hides_originals() {
        let mut flows = vec![
            record(Ipv4::new(87, 1, 2, 3)),
            record(Ipv4::new(87, 1, 2, 4)),
            record(Ipv4::new(87, 1, 2, 3)),
        ];
        anonymise_clients(&mut flows);
        // Same original address -> same anonymised address.
        assert_eq!(flows[0].key.client.ip, flows[2].key.client.ip);
        assert_ne!(flows[0].key.client.ip, flows[1].key.client.ip);
        // Anonymised space.
        for f in &flows {
            assert_eq!(f.key.client.ip.octets()[0], 10);
        }
        // Server side untouched.
        assert_eq!(flows[0].key.server.ip, Ipv4::new(107, 22, 0, 1));
    }
}

//! Flow-log serialisation: the anonymised per-flow export format.
//!
//! The paper's authors published their flow measurements as anonymised
//! logs (`http://traces.simpleweb.org/dropbox/`); this module is the
//! equivalent for the simulated captures — JSON-lines, one
//! [`FlowRecord`] per line — with reader/writer helpers so downstream
//! tools can consume exported traces without touching the simulator.

use crate::flow::FlowRecord;
use std::io::{self, BufRead, Write};

/// Write records as JSON-lines.
pub fn write_jsonl<W: Write>(mut sink: W, flows: &[FlowRecord]) -> io::Result<()> {
    for f in flows {
        let line = simcore::json::to_string(f);
        sink.write_all(line.as_bytes())?;
        sink.write_all(b"\n")?;
    }
    Ok(())
}

/// Read records from JSON-lines, skipping blank lines. Fails on the first
/// malformed record, reporting its line number.
pub fn read_jsonl<R: BufRead>(source: R) -> io::Result<Vec<FlowRecord>> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: FlowRecord = simcore::json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", idx + 1))
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Anonymise client addresses in place: replaces each distinct client
/// address with a sequential identifier in `10.0.0.0/8`, preserving
/// household groupings but not the original numbering (the paper's probes
/// exported anonymised addresses for the same reason).
pub fn anonymise_clients(flows: &mut [FlowRecord]) {
    use crate::endpoint::Ipv4;
    use std::collections::BTreeMap;
    let mut map: BTreeMap<Ipv4, Ipv4> = BTreeMap::new();
    let mut next: u32 = 1;
    for f in flows {
        let anon = *map.entry(f.key.client.ip).or_insert_with(|| {
            let ip = Ipv4(0x0A00_0000 | next);
            next += 1;
            ip
        });
        f.key.client.ip = anon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, FlowKey, Ipv4};
    use crate::flow::{DirStats, FlowClose};
    use simcore::SimTime;

    fn record(client: Ipv4) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(client, 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::from_secs(10),
            last_packet: SimTime::from_secs(20),
            up: DirStats {
                bytes: 100,
                ..DirStats::default()
            },
            down: DirStats {
                bytes: 4_200,
                ..DirStats::default()
            },
            min_rtt_ms: Some(92.5),
            rtt_samples: 11,
            tls_sni: Some("dl-client1.dropbox.com".into()),
            tls_certificate_cn: Some("*.dropbox.com".into()),
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let flows = vec![
            record(Ipv4::new(87, 1, 2, 3)),
            record(Ipv4::new(87, 1, 2, 4)),
        ];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &flows).unwrap();
        let parsed = read_jsonl(io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].key, flows[0].key);
        assert_eq!(parsed[0].min_rtt_ms, flows[0].min_rtt_ms);
        assert_eq!(parsed[1].down.bytes, 4_200);
    }

    #[test]
    fn reader_skips_blank_lines_and_reports_errors() {
        let input = "\n\n{not json}\n";
        let err = read_jsonl(io::Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn reader_reports_one_based_line_for_bad_record_mid_file() {
        // A valid record, a blank line, then a record with a missing field:
        // the error must name the physical (1-based) line, counting blanks.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[record(Ipv4::new(87, 1, 2, 3))]).unwrap();
        let mut input = String::from_utf8(buf).unwrap();
        input.push('\n');
        input.push_str("{\"key\":null}\n");
        let err = read_jsonl(io::Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reader_accepts_pre_fault_schema_lines() {
        // Logs written before the fault-injection fields existed carry
        // neither per-direction `rtx_bytes` nor the flow-level `aborted`
        // marker; they must parse with both defaulted to zero/false.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[record(Ipv4::new(87, 1, 2, 3))]).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let old = line
            .replace("\"rtx_bytes\":0,", "")
            .replace(",\"aborted\":false", "");
        assert!(!old.contains("rtx_bytes") && !old.contains("aborted"));
        let parsed = read_jsonl(io::Cursor::new(old)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].up.rtx_bytes, 0);
        assert_eq!(parsed[0].down.rtx_bytes, 0);
        assert!(!parsed[0].aborted);
        assert_eq!(parsed[0].down.bytes, 4_200);
    }

    #[test]
    fn anonymisation_is_consistent_and_hides_originals() {
        let mut flows = vec![
            record(Ipv4::new(87, 1, 2, 3)),
            record(Ipv4::new(87, 1, 2, 4)),
            record(Ipv4::new(87, 1, 2, 3)),
        ];
        anonymise_clients(&mut flows);
        // Same original address -> same anonymised address.
        assert_eq!(flows[0].key.client.ip, flows[2].key.client.ip);
        assert_ne!(flows[0].key.client.ip, flows[1].key.client.ip);
        // Anonymised space.
        for f in &flows {
            assert_eq!(f.key.client.ip.octets()[0], 10);
        }
        // Server side untouched.
        assert_eq!(flows[0].key.server.ip, Ipv4::new(107, 22, 0, 1));
    }
}

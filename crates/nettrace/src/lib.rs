//! Packet and flow trace types shared between the traffic generators and
//! the passive monitor.
//!
//! The boundary between "the network" and "the measurement system" in this
//! reproduction is the [`packet::Packet`]: the TCP model emits packets as
//! they cross the vantage point, and the `tstat` crate consumes them without
//! access to any generator state — exactly like a probe on a live link. What
//! a DPI probe could legitimately read from the wire (TLS handshake server
//! names, cleartext HTTP, the cleartext notification payloads) is carried by
//! [`packet::AppMarker`]; everything else about a packet is sizes, flags,
//! sequence numbers, and timing.
//!
//! The crate also provides:
//!
//! * [`endpoint`] — IPv4 endpoints and flow keys,
//! * [`pcap`] — a libpcap file writer that serialises packet streams into
//!   standard `.pcap` files (synthesising Ethernet/IP/TCP headers), and
//! * [`flow`] — the Tstat-style per-flow record ([`flow::FlowRecord`]) that
//!   the monitor exports and the analysis layer consumes,
//! * [`sink`] — the [`sink::FlowSink`] trait: the streaming boundary
//!   completed records flow through (monitor → analysis/serialisation)
//!   without whole-capture materialisation, and
//! * [`flowlog`] — its JSON-lines serialisation with anonymisation,
//!   mirroring the anonymised flow logs the paper published; the
//!   streaming [`flowlog::JsonlWriter`]/[`flowlog::JsonlReader`] forms
//!   plug directly into sinks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endpoint;
pub mod flow;
pub mod flowlog;
pub mod packet;
pub mod pcap;
pub mod sink;

pub use endpoint::{Endpoint, FlowKey, Ipv4};
pub use flow::FlowRecord;
pub use packet::{AppMarker, Packet, TcpFlags};
pub use sink::{FlowSink, SpanMerge};

//! The streaming record boundary between capture and analysis.
//!
//! A [`FlowSink`] consumes completed [`FlowRecord`]s one at a time, in
//! the order the monitor finalises them. It is the seam the whole
//! pipeline hangs on: `tstat::Monitor` drains finished flows into a
//! sink, the workload driver emits a capture into a sink as it renders,
//! and the analysis layer's fan-out pipeline *is* a sink — so a capture
//! can be simulated, serialised, re-read and analysed without ever
//! materialising the full record vector.
//!
//! Determinism contract: a sink observes records in a single canonical
//! order (the monitor's finalisation order). Producers never reorder,
//! batch or drop records on the way into a sink, so feeding the same
//! capture through any sink chain is byte-reproducible.

use crate::flow::FlowRecord;

/// A consumer of completed flow records.
pub trait FlowSink {
    /// Accept one completed record. Called exactly once per record, in
    /// capture order.
    fn accept(&mut self, flow: FlowRecord);
}

/// The materialising sink: collect records into a vector (the legacy
/// behaviour every pre-streaming call path reduces to).
impl FlowSink for Vec<FlowRecord> {
    fn accept(&mut self, flow: FlowRecord) {
        self.push(flow);
    }
}

/// A sink that counts records and forwards nothing — useful to measure a
/// producer without paying for storage.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of records accepted so far.
    pub records: u64,
}

impl FlowSink for CountingSink {
    fn accept(&mut self, _flow: FlowRecord) {
        self.records += 1;
    }
}

/// Fan one record out to two sinks (records are cloned into the first,
/// moved into the second). Chains compose: `Tee(a, Tee(b, c))`.
pub struct Tee<'a, A: FlowSink, B: FlowSink>(pub &'a mut A, pub &'a mut B);

impl<A: FlowSink, B: FlowSink> FlowSink for Tee<'_, A, B> {
    fn accept(&mut self, flow: FlowRecord) {
        self.0.accept(flow.clone());
        self.1.accept(flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, FlowKey, Ipv4};
    use crate::flow::{DirStats, FlowClose};
    use simcore::SimTime;

    fn record(port: u16) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), port),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::from_secs(1),
            last_packet: SimTime::from_secs(2),
            up: DirStats::default(),
            down: DirStats::default(),
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: None,
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn vec_sink_preserves_order() {
        let mut v: Vec<FlowRecord> = Vec::new();
        for p in [1u16, 2, 3] {
            v.accept(record(p));
        }
        let ports: Vec<u16> = v.iter().map(|f| f.key.client.port).collect();
        assert_eq!(ports, [1, 2, 3]);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut a: Vec<FlowRecord> = Vec::new();
        let mut b = CountingSink::default();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.accept(record(7));
            tee.accept(record(8));
        }
        assert_eq!(a.len(), 2);
        assert_eq!(b.records, 2);
    }
}

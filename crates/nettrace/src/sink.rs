//! The streaming record boundary between capture and analysis.
//!
//! A [`FlowSink`] consumes completed [`FlowRecord`]s one at a time, in
//! the order the monitor finalises them. It is the seam the whole
//! pipeline hangs on: `tstat::Monitor` drains finished flows into a
//! sink, the workload driver emits a capture into a sink as it renders,
//! and the analysis layer's fan-out pipeline *is* a sink — so a capture
//! can be simulated, serialised, re-read and analysed without ever
//! materialising the full record vector.
//!
//! Determinism contract: a sink observes records in a single canonical
//! order (the monitor's finalisation order). Producers never reorder,
//! batch or drop records on the way into a sink, so feeding the same
//! capture through any sink chain is byte-reproducible.

use crate::flow::FlowRecord;

/// A consumer of completed flow records.
pub trait FlowSink {
    /// Accept one completed record. Called exactly once per record, in
    /// capture order.
    fn accept(&mut self, flow: FlowRecord);
}

/// The materialising sink: collect records into a vector (the legacy
/// behaviour every pre-streaming call path reduces to).
impl FlowSink for Vec<FlowRecord> {
    fn accept(&mut self, flow: FlowRecord) {
        self.push(flow);
    }
}

/// A sink that counts records and forwards nothing — useful to measure a
/// producer without paying for storage.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of records accepted so far.
    pub records: u64,
}

impl FlowSink for CountingSink {
    fn accept(&mut self, _flow: FlowRecord) {
        self.records += 1;
    }
}

/// Ordered re-assembly of a record stream that was produced in spans.
///
/// A producer split into contiguous spans (e.g. the household ranges of
/// one capture) finishes its spans in arbitrary wall-clock order. Each
/// span's records land in their own slot — [`SpanMerge::span_sink`] hands
/// out the slot's [`FlowSink`] — and [`SpanMerge::into_flows`] releases
/// everything in slot order: the single canonical order the serial
/// producer would have emitted. The merge never reorders, drops, or
/// batches records *within* a span, so when the spans partition the
/// serial stream, the merged stream is byte-identical to it.
pub struct SpanMerge {
    slots: Vec<Vec<FlowRecord>>,
}

impl SpanMerge {
    /// A merge expecting `spans` slots.
    pub fn new(spans: usize) -> SpanMerge {
        SpanMerge {
            slots: (0..spans).map(|_| Vec::new()).collect(),
        }
    }

    /// The sink for one span's records. `slot` is the span's position in
    /// the canonical order — never its completion order.
    pub fn span_sink(&mut self, slot: usize) -> &mut impl FlowSink {
        &mut self.slots[slot]
    }

    /// Accept a whole span materialised elsewhere (panics if the slot was
    /// already filled — every span has exactly one producer).
    pub fn accept_span(&mut self, slot: usize, flows: Vec<FlowRecord>) {
        assert!(self.slots[slot].is_empty(), "span slot {slot} filled twice");
        self.slots[slot] = flows;
    }

    /// Total records held across all slots so far.
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// True when no slot holds any record yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Release every record in span order.
    pub fn into_flows(self) -> Vec<FlowRecord> {
        let mut out = Vec::with_capacity(self.slots.iter().map(Vec::len).sum());
        for span in self.slots {
            out.extend(span);
        }
        out
    }
}

/// Fan one record out to two sinks (records are cloned into the first,
/// moved into the second). Chains compose: `Tee(a, Tee(b, c))`.
pub struct Tee<'a, A: FlowSink, B: FlowSink>(pub &'a mut A, pub &'a mut B);

impl<A: FlowSink, B: FlowSink> FlowSink for Tee<'_, A, B> {
    fn accept(&mut self, flow: FlowRecord) {
        self.0.accept(flow.clone());
        self.1.accept(flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, FlowKey, Ipv4};
    use crate::flow::{DirStats, FlowClose};
    use simcore::SimTime;

    fn record(port: u16) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), port),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::from_secs(1),
            last_packet: SimTime::from_secs(2),
            up: DirStats::default(),
            down: DirStats::default(),
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: None,
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn vec_sink_preserves_order() {
        let mut v: Vec<FlowRecord> = Vec::new();
        for p in [1u16, 2, 3] {
            v.accept(record(p));
        }
        let ports: Vec<u16> = v.iter().map(|f| f.key.client.port).collect();
        assert_eq!(ports, [1, 2, 3]);
    }

    #[test]
    fn span_merge_releases_slot_order_regardless_of_arrival() {
        let mut merge = SpanMerge::new(3);
        // Spans complete out of order; slots keep the canonical order.
        merge.accept_span(2, vec![record(5), record(6)]);
        merge.span_sink(0).accept(record(1));
        merge.span_sink(0).accept(record(2));
        merge.accept_span(1, vec![record(3), record(4)]);
        assert_eq!(merge.len(), 6);
        assert!(!merge.is_empty());
        let ports: Vec<u16> = merge
            .into_flows()
            .iter()
            .map(|f| f.key.client.port)
            .collect();
        assert_eq!(ports, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn span_merge_rejects_double_fill() {
        let mut merge = SpanMerge::new(1);
        merge.accept_span(0, vec![record(1)]);
        merge.accept_span(0, vec![record(2)]);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut a: Vec<FlowRecord> = Vec::new();
        let mut b = CountingSink::default();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.accept(record(7));
            tee.accept(record(8));
        }
        assert_eq!(a.len(), 2);
        assert_eq!(b.records, 2);
    }
}

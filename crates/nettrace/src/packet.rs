//! Packets as observed at the vantage point.

use crate::endpoint::Endpoint;
use simcore::json::{FromJson, Json, JsonError, ToJson};
use simcore::SimTime;
use std::fmt;

/// TCP header flags (the subset the monitor cares about).
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags(pub u8);

impl ToJson for TcpFlags {
    fn to_json(&self) -> Json {
        Json::U64(self.0 as u64)
    }
}

impl FromJson for TcpFlags {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u8::from_json(v).map(TcpFlags)
    }
}

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag bit.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag bit.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag bit.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag bit.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Union of two flag sets.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True when all bits of `other` are present.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Convenience predicates.
    pub const fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    /// True when the ACK bit is set.
    pub const fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
    /// True when the PSH bit is set.
    pub const fn psh(self) -> bool {
        self.contains(TcpFlags::PSH)
    }
    /// True when the FIN bit is set.
    pub const fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    /// True when the RST bit is set.
    pub const fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn() {
            parts.push("SYN");
        }
        if self.fin() {
            parts.push("FIN");
        }
        if self.rst() {
            parts.push("RST");
        }
        if self.psh() {
            parts.push("PSH");
        }
        if self.ack() {
            parts.push("ACK");
        }
        if parts.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// DPI-visible application content of a packet.
///
/// This models exactly what the paper's instrumented Tstat could read from
/// a real packet: TLS handshake fields (cleartext by design), cleartext
/// HTTP (notification protocol and some direct-link downloads), and the
/// notification payload (device id + namespace list, Sec. 2.3.1). Encrypted
/// application data carries `None`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AppMarker {
    /// TLS ClientHello; SNI extension carries the requested server name.
    TlsClientHello {
        /// Server name from the SNI extension.
        sni: String,
    },
    /// TLS ServerHello + Certificate; the certificate common name is
    /// readable (`*.dropbox.com` for all Dropbox services).
    TlsCertificate {
        /// Certificate common name.
        common_name: String,
    },
    /// Cleartext HTTP request line + Host header.
    HttpRequest {
        /// Value of the Host header.
        host: String,
        /// Request path.
        path: String,
    },
    /// Cleartext HTTP response status line.
    HttpResponse {
        /// HTTP status code.
        status: u16,
    },
    /// Dropbox notification long-poll request payload. The protocol is
    /// plain HTTP: the Host header, the device id (`host_int`) and the
    /// current namespace list are all readable on the wire.
    NotifyRequest {
        /// HTTP Host header (`notifyX.dropbox.com`).
        host: String,
        /// Unique device identifier.
        host_int: u64,
        /// Namespace (shared-folder) identifiers registered on the device.
        namespaces: Vec<u64>,
    },
}

// Externally-tagged representation, `{"VariantName": {fields...}}` — the
// same wire format the serde derive this replaces produced.
impl ToJson for AppMarker {
    fn to_json(&self) -> Json {
        let (tag, body) = match self {
            AppMarker::TlsClientHello { sni } => {
                ("TlsClientHello", Json::obj([("sni", sni.to_json())]))
            }
            AppMarker::TlsCertificate { common_name } => (
                "TlsCertificate",
                Json::obj([("common_name", common_name.to_json())]),
            ),
            AppMarker::HttpRequest { host, path } => (
                "HttpRequest",
                Json::obj([("host", host.to_json()), ("path", path.to_json())]),
            ),
            AppMarker::HttpResponse { status } => {
                ("HttpResponse", Json::obj([("status", status.to_json())]))
            }
            AppMarker::NotifyRequest {
                host,
                host_int,
                namespaces,
            } => (
                "NotifyRequest",
                Json::obj([
                    ("host", host.to_json()),
                    ("host_int", host_int.to_json()),
                    ("namespaces", namespaces.to_json()),
                ]),
            ),
        };
        Json::obj([(tag, body)])
    }
}

impl FromJson for AppMarker {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, body) = match v {
            Json::Obj(fields) if fields.len() == 1 => (&fields[0].0, &fields[0].1),
            other => {
                return Err(JsonError::new(format!(
                    "expected single-key variant object, found {}",
                    other.kind()
                )))
            }
        };
        match tag.as_str() {
            "TlsClientHello" => Ok(AppMarker::TlsClientHello {
                sni: body.field("sni")?,
            }),
            "TlsCertificate" => Ok(AppMarker::TlsCertificate {
                common_name: body.field("common_name")?,
            }),
            "HttpRequest" => Ok(AppMarker::HttpRequest {
                host: body.field("host")?,
                path: body.field("path")?,
            }),
            "HttpResponse" => Ok(AppMarker::HttpResponse {
                status: body.field("status")?,
            }),
            "NotifyRequest" => Ok(AppMarker::NotifyRequest {
                host: body.field("host")?,
                host_int: body.field("host_int")?,
                namespaces: body.field("namespaces")?,
            }),
            other => Err(JsonError::new(format!(
                "unknown AppMarker variant `{other}`"
            ))),
        }
    }
}

/// One TCP segment crossing the monitored link.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Capture timestamp at the probe.
    pub ts: SimTime,
    /// Sender endpoint.
    pub src: Endpoint,
    /// Receiver endpoint.
    pub dst: Endpoint,
    /// TCP sequence number (byte offset of the first payload byte).
    pub seq: u32,
    /// TCP acknowledgment number.
    pub ack_no: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// TCP payload bytes carried by this segment.
    pub payload_len: u32,
    /// DPI-visible content, when the payload is parseable on the wire.
    pub marker: Option<AppMarker>,
}

impl Packet {
    /// Total on-wire length: Ethernet (14) + IPv4 (20) + TCP (20) + payload.
    pub fn wire_len(&self) -> u32 {
        54 + self.payload_len
    }

    /// True when this segment carries payload.
    pub fn has_payload(&self) -> bool {
        self.payload_len > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Endpoint, Ipv4};

    fn pkt(flags: TcpFlags, len: u32) -> Packet {
        Packet {
            ts: SimTime::EPOCH,
            src: Endpoint::new(Ipv4::new(10, 0, 0, 1), 1234),
            dst: Endpoint::new(Ipv4::new(10, 0, 0, 2), 443),
            seq: 0,
            ack_no: 0,
            flags,
            payload_len: len,
            marker: None,
        }
    }

    #[test]
    fn flag_predicates() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert!(f.syn() && f.ack());
        assert!(!f.psh() && !f.fin() && !f.rst());
        assert_eq!(format!("{f:?}"), "SYN|ACK");
    }

    #[test]
    fn wire_len_includes_headers() {
        assert_eq!(pkt(TcpFlags::ACK, 0).wire_len(), 54);
        assert_eq!(pkt(TcpFlags::ACK, 1460).wire_len(), 1514);
    }

    #[test]
    fn payload_predicate() {
        assert!(!pkt(TcpFlags::SYN, 0).has_payload());
        assert!(pkt(TcpFlags::PSH.union(TcpFlags::ACK), 100).has_payload());
    }
}

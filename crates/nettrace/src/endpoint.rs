//! IPv4 endpoints and flow keys.

use simcore::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A (simulated) IPv4 address.
///
/// Stored as a plain `u32` in network order semantics; formatting renders
/// dotted-quad. Client addresses in exported traces are anonymised by the
/// monitor before export (see `tstat`), mirroring the paper's privacy
/// handling ("all payload data are discarded directly in the probe").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl ToJson for Ipv4 {
    fn to_json(&self) -> Json {
        Json::U64(self.0 as u64)
    }
}

impl FromJson for Ipv4 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(Ipv4)
    }
}

impl Ipv4 {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Octets of the address.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A transport endpoint: address and TCP port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv4 address.
    pub ip: Ipv4,
    /// TCP port.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub const fn new(ip: Ipv4, port: u16) -> Self {
        Endpoint { ip, port }
    }
}

impl ToJson for Endpoint {
    fn to_json(&self) -> Json {
        Json::obj([("ip", self.ip.to_json()), ("port", self.port.to_json())])
    }
}

impl FromJson for Endpoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Endpoint {
            ip: v.field("ip")?,
            port: v.field("port")?,
        })
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identity of a TCP connection as seen by the monitor: the *client*
/// (initiator, inside the monitored network) and *server* endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FlowKey {
    /// Connection initiator (inside the vantage point).
    pub client: Endpoint,
    /// Remote server.
    pub server: Endpoint,
}

impl FlowKey {
    /// Construct a flow key.
    pub const fn new(client: Endpoint, server: Endpoint) -> Self {
        FlowKey { client, server }
    }
}

impl ToJson for FlowKey {
    fn to_json(&self) -> Json {
        Json::obj([
            ("client", self.client.to_json()),
            ("server", self.server.to_json()),
        ])
    }
}

impl FromJson for FlowKey {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FlowKey {
            client: v.field("client")?,
            server: v.field("server")?,
        })
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.client, self.server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_quad_roundtrip() {
        let ip = Ipv4::new(192, 168, 1, 42);
        assert_eq!(ip.octets(), [192, 168, 1, 42]);
        assert_eq!(format!("{ip}"), "192.168.1.42");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ipv4::new(10, 0, 0, 1) < Ipv4::new(10, 0, 1, 0));
    }

    #[test]
    fn flow_key_display() {
        let k = FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 1), 50_000),
            Endpoint::new(Ipv4::new(199, 47, 216, 1), 443),
        );
        assert_eq!(format!("{k}"), "10.0.0.1:50000 -> 199.47.216.1:443");
    }
}

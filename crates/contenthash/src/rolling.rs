//! Rolling weak checksum (rsync's Adler-32 variant).
//!
//! librsync — which the Dropbox client embeds — finds matching blocks by
//! sliding a cheap *rolling* checksum over the new file and only computing
//! the strong (SHA) hash when the weak one matches a known block. The
//! checksum here is rsync's: two 16-bit sums `a = Σ xᵢ`, `b = Σ (L-i)·xᵢ`
//! combined as `b<<16 | a`, which can be rolled in O(1) per byte.

/// Rolling checksum state over a fixed-size window.
#[derive(Clone, Debug)]
pub struct RollingAdler {
    a: u32,
    b: u32,
    window: usize,
}

impl RollingAdler {
    /// Compute the checksum of `block` and return a roller positioned on it.
    pub fn new(block: &[u8]) -> Self {
        let mut a: u32 = 0;
        let mut b: u32 = 0;
        let l = block.len() as u32;
        for (i, &x) in block.iter().enumerate() {
            a = a.wrapping_add(x as u32);
            b = b.wrapping_add((l - i as u32) * x as u32);
        }
        RollingAdler {
            a: a & 0xffff,
            b: b & 0xffff,
            window: block.len(),
        }
    }

    /// Current checksum value.
    pub fn value(&self) -> u32 {
        (self.b << 16) | self.a
    }

    /// Slide the window one byte: remove `out` (the oldest byte) and append
    /// `inp` (the new byte).
    pub fn roll(&mut self, out: u8, inp: u8) {
        let l = self.window as u32;
        self.a = self.a.wrapping_sub(out as u32).wrapping_add(inp as u32) & 0xffff;
        self.b = self.b.wrapping_sub(l * out as u32).wrapping_add(self.a) & 0xffff;
    }

    /// Window size this roller was built for.
    pub fn window(&self) -> usize {
        self.window
    }
}

/// One-shot weak checksum of a block.
pub fn weak_checksum(block: &[u8]) -> u32 {
    RollingAdler::new(block).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolled_equals_recomputed() {
        let data: Vec<u8> = (0..256u32).map(|i| (i * 17 % 251) as u8).collect();
        let w = 32;
        let mut roller = RollingAdler::new(&data[..w]);
        for start in 1..data.len() - w {
            roller.roll(data[start - 1], data[start + w - 1]);
            let direct = weak_checksum(&data[start..start + w]);
            assert_eq!(roller.value(), direct, "offset {start}");
        }
    }

    #[test]
    fn checksum_depends_on_order() {
        assert_ne!(weak_checksum(b"abcd"), weak_checksum(b"dcba"));
    }

    #[test]
    fn empty_block_is_zero() {
        assert_eq!(weak_checksum(b""), 0);
    }

    #[test]
    fn single_byte_window_roll() {
        let mut r = RollingAdler::new(b"x");
        r.roll(b'x', b'y');
        assert_eq!(r.value(), weak_checksum(b"y"));
    }
}

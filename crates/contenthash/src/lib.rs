//! Content hashing and encoding substrate for the Dropbox model.
//!
//! The Dropbox client identifies each ≤4 MB chunk by its SHA-256 hash,
//! deduplicates on that hash, transmits *deltas* computed with a
//! librsync-style block-matching algorithm, and compresses chunks before
//! upload (paper, Sec. 2.1). This crate implements those three primitives
//! from scratch:
//!
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256 (validated against the standard test
//!   vectors),
//! * [`rolling`] — the Adler-32-style rolling checksum used by
//!   rsync/librsync for weak block matching,
//! * [`delta`] — block-based delta encoding: signature generation, delta
//!   computation against a signature, and patch application,
//! * [`lzss`] — a byte-oriented LZSS compressor/decompressor used to model
//!   the client's pre-upload compression.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod lzss;
pub mod rolling;
pub mod sha256;

pub use delta::{apply, compute_delta, signature, Delta, DeltaOp, Signature};
pub use rolling::RollingAdler;
pub use sha256::{sha256, Digest};

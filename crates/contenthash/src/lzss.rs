//! LZSS compression.
//!
//! The Dropbox client "compresses chunks before submitting them" (paper,
//! Sec. 2.1). We model that with a small byte-oriented LZSS codec: a 4 KiB
//! sliding window, 3-byte hash chains for match finding, and a flag-byte
//! framing (1 flag bit per token, literal = 1 byte, match = 2 bytes encoding
//! a (distance, length) pair with lengths 3–18).
//!
//! The codec is exact (decompress ∘ compress = identity) and achieves
//! realistic ratios on text-like data while leaving already-random data
//! essentially unchanged in size — exactly the property the traffic model
//! needs when deciding how many bytes a chunk occupies on the wire.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compress `input` with LZSS. The output always starts with the original
/// length as a little-endian u32 so that decompression can pre-allocate.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // Hash chains over 3-byte prefixes.
    const HASH_SIZE: usize = 1 << 13;
    let hash = |a: u8, b: u8, c: u8| -> usize {
        ((a as usize) << 6 ^ (b as usize) << 3 ^ c as usize) & (HASH_SIZE - 1)
    };
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];

    let mut pos = 0usize;
    let mut flag_pos = out.len();
    out.push(0); // flag byte placeholder
    let mut flag_bit = 0u8;

    let push_token = |out: &mut Vec<u8>,
                      flag_pos: &mut usize,
                      flag_bit: &mut u8,
                      is_match: bool,
                      bytes: &[u8]| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if is_match {
            out[*flag_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
        out.extend_from_slice(bytes);
    };

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash(input[pos], input[pos + 1], input[pos + 2]);
            let mut cand = head[h];
            let mut tries = 32; // bounded chain walk keeps compression O(n)
            while cand != usize::MAX && tries > 0 {
                if pos - cand <= WINDOW {
                    let max = MAX_MATCH.min(input.len() - pos);
                    let mut l = 0;
                    while l < max && input[cand + l] == input[pos + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = pos - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                } else {
                    break; // chain entries only get older
                }
                cand = prev[cand];
                tries -= 1;
            }
            // Insert current position into the chain.
            prev[pos] = head[h];
            head[h] = pos;
        }

        if best_len >= MIN_MATCH {
            // Encode (distance 1..=4096, length 3..=18) in two bytes:
            // 12 bits distance-1, 4 bits length-3.
            let d = (best_dist - 1) as u16;
            let l = (best_len - MIN_MATCH) as u16;
            let code = (d << 4) | l;
            push_token(
                &mut out,
                &mut flag_pos,
                &mut flag_bit,
                true,
                &code.to_le_bytes(),
            );
            // Insert skipped positions into the chains so later matches see them.
            let end = pos + best_len;
            let mut p = pos + 1;
            while p < end && p + MIN_MATCH <= input.len() {
                let h = hash(input[p], input[p + 1], input[p + 2]);
                prev[p] = head[h];
                head[h] = p;
                p += 1;
            }
            pos = end;
        } else {
            push_token(
                &mut out,
                &mut flag_pos,
                &mut flag_bit,
                false,
                &input[pos..pos + 1],
            );
            pos += 1;
        }
    }
    out
}

/// Decompress LZSS output produced by [`compress`].
///
/// Returns `None` on malformed input (truncated stream or invalid
/// back-reference).
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 4 {
        return None;
    }
    let out_len = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(out_len);
    let mut i = 4usize;
    while out.len() < out_len {
        let flags = *data.get(i)?;
        i += 1;
        for bit in 0..8 {
            if out.len() >= out_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let lo = *data.get(i)?;
                let hi = *data.get(i + 1)?;
                i += 2;
                let code = u16::from_le_bytes([lo, hi]);
                let dist = (code >> 4) as usize + 1;
                let len = (code & 0xf) as usize + MIN_MATCH;
                if dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(*data.get(i)?);
                i += 1;
            }
        }
    }
    (out.len() == out_len).then_some(out)
}

/// Compression ratio `compressed / original` for a buffer (1.0+ means
/// incompressible after framing overhead).
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        roundtrip(&data);
        let r = ratio(&data);
        assert!(r < 0.25, "repetitive text should compress well: {r}");
    }

    #[test]
    fn roundtrip_all_same_byte() {
        let data = vec![0x41u8; 100_000];
        roundtrip(&data);
        assert!(ratio(&data) < 0.15);
    }

    #[test]
    fn random_data_incompressible() {
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        roundtrip(&data);
        let r = ratio(&data);
        assert!(r > 1.0 && r < 1.2, "random data ratio: {r}");
    }

    #[test]
    fn roundtrip_structured_binary() {
        let data: Vec<u8> = (0..60_000u32).flat_map(|i| (i / 7).to_le_bytes()).collect();
        roundtrip(&data);
        assert!(ratio(&data) < 0.7);
    }

    #[test]
    fn decompress_rejects_truncation() {
        let c = compress(b"hello hello hello hello");
        assert!(decompress(&c[..c.len() - 1]).is_none());
        assert!(decompress(&[]).is_none());
    }

    #[test]
    fn decompress_rejects_bad_backref() {
        // Length header 4, one flag byte claiming a match, match code
        // pointing before the start of output.
        let bad = [4u8, 0, 0, 0, 0b0000_0001, 0xff, 0xff];
        assert!(decompress(&bad).is_none());
    }

    #[test]
    fn window_boundary_matches() {
        // Repeat a pattern slightly longer than the window to exercise
        // distance limits.
        let unit: Vec<u8> = (0..WINDOW + 100).map(|i| (i % 253) as u8).collect();
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        roundtrip(&data);
    }
}

//! Block-based delta encoding (librsync analogue).
//!
//! The Dropbox client "reduces the amount of exchanged data by using delta
//! encoding when transmitting chunks" (paper, Sec. 2.1). The algorithm here
//! is rsync's: the receiver-side *signature* lists, per fixed-size block of
//! the old data, a weak rolling checksum and a strong SHA-256 hash; the
//! sender slides the weak checksum over the new data, confirms candidate
//! matches with the strong hash, and emits a sequence of `Copy` (from old)
//! and `Literal` (new bytes) operations.

use crate::rolling::{weak_checksum, RollingAdler};
use crate::sha256::{sha256, Digest};
use std::collections::HashMap;

/// Default signature block size (librsync's default is 2 KiB).
pub const DEFAULT_BLOCK: usize = 2048;

/// Signature of the *old* version of a file: per-block weak + strong hashes.
#[derive(Clone, Debug)]
pub struct Signature {
    block_size: usize,
    /// weak checksum -> indices of blocks carrying that weak checksum
    weak_index: HashMap<u32, Vec<u32>>,
    strong: Vec<Digest>,
    old_len: usize,
}

/// A single delta instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes starting at `offset` in the old data.
    Copy {
        /// Byte offset into the old data.
        offset: u64,
        /// Number of bytes to copy.
        len: u32,
    },
    /// Emit these literal bytes.
    Literal(Vec<u8>),
}

/// A delta: the instruction stream transforming old data into new data.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// Instruction stream, in output order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Total bytes of literal data (what must actually be transmitted).
    pub fn literal_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal(v) => v.len(),
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Total bytes copied from the old version.
    pub fn copied_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Copy { len, .. } => *len as usize,
                DeltaOp::Literal(_) => 0,
            })
            .sum()
    }

    /// Encoded wire size: literals plus a small header per instruction
    /// (matching librsync's ~1–10 byte command encoding; we charge 8).
    pub fn wire_size(&self) -> usize {
        self.literal_bytes() + 8 * self.ops.len()
    }
}

/// Build the signature of `old` with the given block size.
pub fn signature(old: &[u8], block_size: usize) -> Signature {
    assert!(block_size > 0, "signature: zero block size");
    let mut weak_index: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut strong = Vec::new();
    for (i, block) in old.chunks(block_size).enumerate() {
        // Only full blocks participate in matching; a short tail is cheaper
        // to resend than to match (librsync does the same).
        if block.len() == block_size {
            weak_index
                .entry(weak_checksum(block))
                .or_default()
                .push(i as u32);
            strong.push(sha256(block));
        }
    }
    Signature {
        block_size,
        weak_index,
        strong,
        old_len: old.len(),
    }
}

impl Signature {
    /// The block size this signature was computed with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of full blocks in the signature.
    pub fn blocks(&self) -> usize {
        self.strong.len()
    }

    /// Length of the old data the signature describes.
    pub fn old_len(&self) -> usize {
        self.old_len
    }
}

/// Compute the delta turning the signed old data into `new`.
///
/// ```
/// use contenthash::{signature, compute_delta, apply};
/// let old = vec![7u8; 8192];
/// let mut new = old.clone();
/// new[100] = 9;
/// let sig = signature(&old, 1024);
/// let delta = compute_delta(&sig, &new);
/// assert_eq!(apply(&old, &delta).unwrap(), new);
/// assert!(delta.wire_size() < old.len()); // only the edit travels
/// ```
pub fn compute_delta(sig: &Signature, new: &[u8]) -> Delta {
    let bs = sig.block_size;
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut lit_start = 0usize; // start of the pending literal run
    let mut pos = 0usize;

    let flush_literal = |ops: &mut Vec<DeltaOp>, from: usize, to: usize, data: &[u8]| {
        if to > from {
            ops.push(DeltaOp::Literal(data[from..to].to_vec()));
        }
    };

    if new.len() >= bs && !sig.weak_index.is_empty() {
        let mut roller = RollingAdler::new(&new[..bs]);
        loop {
            let mut coalesced = false;
            if let Some(candidates) = sig.weak_index.get(&roller.value()) {
                let strong_here = sha256(&new[pos..pos + bs]);
                if let Some(&block_idx) = candidates
                    .iter()
                    .find(|&&i| sig.strong[i as usize] == strong_here)
                {
                    flush_literal(&mut ops, lit_start, pos, new);
                    // Coalesce adjacent copies.
                    let offset = block_idx as u64 * bs as u64;
                    if let Some(DeltaOp::Copy { offset: o, len }) = ops.last_mut() {
                        if *o + *len as u64 == offset {
                            *len += bs as u32;
                            coalesced = true;
                        }
                    }
                    if !coalesced {
                        ops.push(DeltaOp::Copy {
                            offset,
                            len: bs as u32,
                        });
                    }
                    pos += bs;
                    lit_start = pos;
                    if pos + bs <= new.len() {
                        roller = RollingAdler::new(&new[pos..pos + bs]);
                        continue;
                    } else {
                        break;
                    }
                }
            }
            // No match at `pos`: slide one byte.
            if pos + bs < new.len() {
                roller.roll(new[pos], new[pos + bs]);
                pos += 1;
            } else {
                break;
            }
        }
    }
    flush_literal(&mut ops, lit_start, new.len(), new);
    Delta { ops }
}

/// Apply a delta to the old data, producing the new data.
///
/// Returns `None` when the delta references bytes outside `old` (a corrupt
/// or mismatched delta).
pub fn apply(old: &[u8], delta: &Delta) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(delta.copied_bytes() + delta.literal_bytes());
    for op in &delta.ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                let start = usize::try_from(*offset).ok()?;
                let end = start.checked_add(*len as usize)?;
                out.extend_from_slice(old.get(start..end)?);
            }
            DeltaOp::Literal(bytes) => out.extend_from_slice(bytes),
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_data(len: usize, seed: u64) -> Vec<u8> {
        // Simple xorshift byte stream; deterministic, incompressible-ish.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn identical_data_is_all_copy() {
        let old = pseudo_data(16 * 1024, 1);
        let sig = signature(&old, 1024);
        let delta = compute_delta(&sig, &old);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(apply(&old, &delta).unwrap(), old);
        // Copies coalesce into one op.
        assert_eq!(delta.ops.len(), 1);
    }

    #[test]
    fn disjoint_data_is_all_literal() {
        let old = pseudo_data(8 * 1024, 2);
        let new = pseudo_data(8 * 1024, 3);
        let sig = signature(&old, 1024);
        let delta = compute_delta(&sig, &new);
        assert_eq!(delta.copied_bytes(), 0);
        assert_eq!(apply(&old, &delta).unwrap(), new);
    }

    #[test]
    fn small_edit_sends_small_literal() {
        let old = pseudo_data(64 * 1024, 4);
        let mut new = old.clone();
        // Edit 100 bytes in the middle.
        for b in &mut new[30_000..30_100] {
            *b ^= 0xff;
        }
        let sig = signature(&old, DEFAULT_BLOCK);
        let delta = compute_delta(&sig, &new);
        assert_eq!(apply(&old, &delta).unwrap(), new);
        // Literal cost is bounded by the touched blocks, far below full size.
        assert!(
            delta.literal_bytes() <= 3 * DEFAULT_BLOCK,
            "{}",
            delta.literal_bytes()
        );
    }

    #[test]
    fn insertion_shifts_are_found() {
        let old = pseudo_data(32 * 1024, 5);
        let mut new = Vec::with_capacity(old.len() + 10);
        new.extend_from_slice(&old[..10_000]);
        new.extend_from_slice(b"0123456789"); // 10-byte insertion
        new.extend_from_slice(&old[10_000..]);
        let sig = signature(&old, 1024);
        let delta = compute_delta(&sig, &new);
        assert_eq!(apply(&old, &delta).unwrap(), new);
        // Rolling match must re-sync after the insertion: most data copied.
        assert!(delta.copied_bytes() as f64 > 0.9 * old.len() as f64);
    }

    #[test]
    fn new_shorter_than_block_is_literal() {
        let old = pseudo_data(8 * 1024, 6);
        let sig = signature(&old, 2048);
        let new = b"tiny".to_vec();
        let delta = compute_delta(&sig, &new);
        assert_eq!(delta.ops, vec![DeltaOp::Literal(new.clone())]);
        assert_eq!(apply(&old, &delta).unwrap(), new);
    }

    #[test]
    fn apply_rejects_out_of_range_copy() {
        let delta = Delta {
            ops: vec![DeltaOp::Copy {
                offset: 100,
                len: 50,
            }],
        };
        assert!(apply(b"short", &delta).is_none());
    }

    #[test]
    fn empty_old_and_new() {
        let sig = signature(b"", 1024);
        let delta = compute_delta(&sig, b"");
        assert!(delta.ops.is_empty());
        assert_eq!(apply(b"", &delta).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wire_size_accounts_for_headers() {
        let delta = Delta {
            ops: vec![
                DeltaOp::Copy { offset: 0, len: 10 },
                DeltaOp::Literal(vec![0; 5]),
            ],
        };
        assert_eq!(delta.wire_size(), 5 + 16);
    }
}

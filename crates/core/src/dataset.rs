//! Vantage-point datasets and the paper's summary tables.
//!
//! A [`Dataset`] is what one probe collected: the monitor's flow records
//! (Dropbox traffic at packet fidelity, background services at flow
//! fidelity) plus the vantage point's capabilities. The headline
//! aggregations — Table 2 (dataset overview), Table 3 (Dropbox totals),
//! Fig. 4 (per-role traffic shares), Fig. 5 (storage servers contacted
//! per day) and the per-provider daily series of Figs. 2–3 — are
//! implemented as streaming accumulators ([`OverviewAcc`] …), so they can
//! run in one shared pass over a record stream (see [`crate::stream`]).
//!
//! This module is the **materialised compatibility view**: the `Dataset`
//! methods iterate the retained flow vector and feed the corresponding
//! accumulator, so pre-streaming callers keep working byte-identically.
//! It is the one place whole-`Vec` iteration is sanctioned (`simlint`'s
//! `full-materialize` rule exempts this file).

use crate::classify::{dropbox_role, provider_of, DropboxRole, Provider};
use crate::stream::{run_one, Accumulate, Pipeline};
use nettrace::{FlowRecord, Ipv4};
use std::collections::{BTreeMap, BTreeSet};
use std::mem::size_of;

/// One vantage point's capture.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Vantage point name ("Campus 1", …).
    pub name: String,
    /// Whether DNS traffic passes the probe (false for Campus 2).
    pub expose_dns: bool,
    /// Number of capture days.
    pub days: u32,
    /// All flow records.
    pub flows: Vec<FlowRecord>,
}

/// Row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetOverview {
    /// Distinct client addresses.
    pub ip_addrs: usize,
    /// Total observed volume in bytes (both directions, all services).
    pub volume_bytes: u64,
}

/// Row of Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DropboxTotals {
    /// Dropbox flows.
    pub flows: usize,
    /// Dropbox volume in bytes.
    pub volume_bytes: u64,
    /// Distinct devices (`host_int`s).
    pub devices: usize,
}

/// Per-role share of Dropbox traffic (Fig. 4).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RoleShare {
    /// Fraction of Dropbox bytes.
    pub bytes_frac: f64,
    /// Fraction of Dropbox flows.
    pub flows_frac: f64,
}

/// One day of a provider's popularity series (Fig. 2).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProviderDay {
    /// Distinct client addresses that contacted the service.
    pub ip_addrs: usize,
    /// Bytes exchanged with the service.
    pub bytes: u64,
}

impl Dataset {
    /// Create a dataset.
    pub fn new(name: impl Into<String>, expose_dns: bool, days: u32) -> Self {
        Dataset {
            name: name.into(),
            expose_dns,
            days,
            flows: Vec::new(),
        }
    }

    /// Dropbox flows only.
    pub fn dropbox_flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows
            .iter()
            .filter(|f| provider_of(f) == Provider::Dropbox)
    }

    /// Client-storage (`dl-clientX`) flows only.
    pub fn client_storage_flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows
            .iter()
            .filter(|f| dropbox_role(f) == Some(DropboxRole::ClientStorage))
    }

    /// Table 2 row.
    pub fn overview(&self) -> DatasetOverview {
        run_one(&self.flows, OverviewAcc::default())
    }

    /// Table 3 row.
    pub fn dropbox_totals(&self) -> DropboxTotals {
        run_one(&self.flows, DropboxTotalsAcc::default())
    }

    /// Fig. 4: traffic share of each Dropbox server role.
    pub fn role_breakdown(&self) -> BTreeMap<&'static str, RoleShare> {
        run_one(&self.flows, RoleBreakdownAcc::default())
    }

    /// Fig. 5: distinct storage-server addresses contacted per day.
    pub fn storage_servers_per_day(&self) -> Vec<usize> {
        run_one(&self.flows, StorageServersAcc::new(self.days))
    }

    /// Figs. 2–3: per-provider daily popularity series.
    pub fn provider_series(&self) -> BTreeMap<Provider, Vec<ProviderDay>> {
        run_one(&self.flows, ProviderSeriesAcc::new(self.days))
    }

    /// Total bytes of one provider per day (Fig. 3 shares).
    pub fn daily_bytes(&self, provider: Provider) -> Vec<u64> {
        run_one(&self.flows, DailyBytesAcc::new(provider, self.days))
    }

    /// Total bytes of *all* traffic per day.
    pub fn daily_total_bytes(&self) -> Vec<u64> {
        run_one(&self.flows, DailyTotalAcc::new(self.days))
    }

    /// Replay the retained flow vector through a [`Pipeline`] — the
    /// bridge from a materialised capture to the single-pass analyses.
    pub fn stream_into(&self, pipeline: &mut Pipeline<'_>) {
        pipeline.run(&self.flows);
    }
}

/// Streaming Table 2 row: distinct client addresses and total volume.
#[derive(Default)]
pub struct OverviewAcc {
    ips: BTreeSet<Ipv4>,
    volume: u64,
}

impl Accumulate for OverviewAcc {
    type Output = DatasetOverview;

    fn observe(&mut self, f: &FlowRecord) {
        self.ips.insert(f.key.client.ip);
        self.volume += f.total_bytes();
    }

    fn finish(self) -> DatasetOverview {
        DatasetOverview {
            ip_addrs: self.ips.len(),
            volume_bytes: self.volume,
        }
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.ips.len() * size_of::<Ipv4>()
    }
}

/// Streaming Table 3 row: Dropbox flows, volume and distinct devices.
#[derive(Default)]
pub struct DropboxTotalsAcc {
    flows: usize,
    volume: u64,
    devices: BTreeSet<u64>,
}

impl Accumulate for DropboxTotalsAcc {
    type Output = DropboxTotals;

    fn observe(&mut self, f: &FlowRecord) {
        if provider_of(f) != Provider::Dropbox {
            return;
        }
        self.flows += 1;
        self.volume += f.total_bytes();
        if let Some(meta) = &f.notify {
            self.devices.insert(meta.host_int);
        }
    }

    fn finish(self) -> DropboxTotals {
        DropboxTotals {
            flows: self.flows,
            volume_bytes: self.volume,
            devices: self.devices.len(),
        }
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.devices.len() * size_of::<u64>()
    }
}

/// Streaming Fig. 4: per-role byte/flow shares of Dropbox traffic.
#[derive(Default)]
pub struct RoleBreakdownAcc {
    bytes: BTreeMap<DropboxRole, u64>,
    flows: BTreeMap<DropboxRole, u64>,
    total_bytes: u64,
    total_flows: u64,
}

impl Accumulate for RoleBreakdownAcc {
    type Output = BTreeMap<&'static str, RoleShare>;

    fn observe(&mut self, f: &FlowRecord) {
        if provider_of(f) != Provider::Dropbox {
            return;
        }
        let role = dropbox_role(f).expect("dropbox flow has a role");
        *self.bytes.entry(role).or_default() += f.total_bytes();
        *self.flows.entry(role).or_default() += 1;
        self.total_bytes += f.total_bytes();
        self.total_flows += 1;
    }

    fn finish(self) -> BTreeMap<&'static str, RoleShare> {
        DropboxRole::ALL
            .into_iter()
            .map(|role| {
                let share = RoleShare {
                    bytes_frac: if self.total_bytes > 0 {
                        *self.bytes.get(&role).unwrap_or(&0) as f64 / self.total_bytes as f64
                    } else {
                        0.0
                    },
                    flows_frac: if self.total_flows > 0 {
                        *self.flows.get(&role).unwrap_or(&0) as f64 / self.total_flows as f64
                    } else {
                        0.0
                    },
                };
                (role.label(), share)
            })
            .collect()
    }
}

/// Streaming Fig. 5: distinct storage-server addresses per capture day.
pub struct StorageServersAcc {
    per_day: Vec<BTreeSet<Ipv4>>,
}

impl StorageServersAcc {
    /// Track `days` capture days.
    pub fn new(days: u32) -> Self {
        StorageServersAcc {
            per_day: vec![BTreeSet::new(); days as usize],
        }
    }
}

impl Accumulate for StorageServersAcc {
    type Output = Vec<usize>;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            return;
        }
        let d = f.first_syn.day() as usize;
        if d < self.per_day.len() {
            self.per_day[d].insert(f.key.server.ip);
        }
    }

    fn finish(self) -> Vec<usize> {
        self.per_day.into_iter().map(|s| s.len()).collect()
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>()
            + self
                .per_day
                .iter()
                .map(|s| size_of::<BTreeSet<Ipv4>>() + s.len() * size_of::<Ipv4>())
                .sum::<usize>()
    }
}

/// Streaming Figs. 2–3: per-provider daily popularity series.
pub struct ProviderSeriesAcc {
    days: u32,
    map: BTreeMap<Provider, Vec<(BTreeSet<Ipv4>, u64)>>,
}

impl ProviderSeriesAcc {
    /// Track `days` capture days per provider.
    pub fn new(days: u32) -> Self {
        ProviderSeriesAcc {
            days,
            map: BTreeMap::new(),
        }
    }
}

impl Accumulate for ProviderSeriesAcc {
    type Output = BTreeMap<Provider, Vec<ProviderDay>>;

    fn observe(&mut self, f: &FlowRecord) {
        let p = provider_of(f);
        let series = self
            .map
            .entry(p)
            .or_insert_with(|| vec![(BTreeSet::new(), 0); self.days as usize]);
        let d = f.first_syn.day() as usize;
        if d < series.len() {
            series[d].0.insert(f.key.client.ip);
            series[d].1 += f.total_bytes();
        }
    }

    fn finish(self) -> BTreeMap<Provider, Vec<ProviderDay>> {
        self.map
            .into_iter()
            .map(|(p, series)| {
                (
                    p,
                    series
                        .into_iter()
                        .map(|(ips, bytes)| ProviderDay {
                            ip_addrs: ips.len(),
                            bytes,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>()
            + self
                .map
                .values()
                .flatten()
                .map(|(ips, _)| size_of::<(BTreeSet<Ipv4>, u64)>() + ips.len() * size_of::<Ipv4>())
                .sum::<usize>()
    }
}

/// Streaming per-day byte totals of one provider (Fig. 3 shares).
pub struct DailyBytesAcc {
    provider: Provider,
    per_day: Vec<u64>,
}

impl DailyBytesAcc {
    /// Track `provider` over `days` capture days.
    pub fn new(provider: Provider, days: u32) -> Self {
        DailyBytesAcc {
            provider,
            per_day: vec![0; days as usize],
        }
    }
}

impl Accumulate for DailyBytesAcc {
    type Output = Vec<u64>;

    fn observe(&mut self, f: &FlowRecord) {
        if provider_of(f) == self.provider {
            let d = f.first_syn.day() as usize;
            if d < self.per_day.len() {
                self.per_day[d] += f.total_bytes();
            }
        }
    }

    fn finish(self) -> Vec<u64> {
        self.per_day
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.per_day.len() * size_of::<u64>()
    }
}

/// Streaming per-day byte totals of *all* traffic.
pub struct DailyTotalAcc {
    per_day: Vec<u64>,
}

impl DailyTotalAcc {
    /// Track `days` capture days.
    pub fn new(days: u32) -> Self {
        DailyTotalAcc {
            per_day: vec![0; days as usize],
        }
    }
}

impl Accumulate for DailyTotalAcc {
    type Output = Vec<u64>;

    fn observe(&mut self, f: &FlowRecord) {
        let d = f.first_syn.day() as usize;
        if d < self.per_day.len() {
            self.per_day[d] += f.total_bytes();
        }
    }

    fn finish(self) -> Vec<u64> {
        self.per_day
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.per_day.len() * size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose, NotifyMeta};
    use nettrace::{Endpoint, FlowKey};
    use simcore::SimTime;

    fn flow(name: &str, client: Ipv4, server: Ipv4, day: u32, up: u64, down: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(Endpoint::new(client, 40_000), Endpoint::new(server, 443)),
            first_syn: SimTime::from_day_offset(day, simcore::SimDuration::from_hours(10)),
            last_packet: SimTime::from_day_offset(day, simcore::SimDuration::from_hours(11)),
            up: DirStats {
                bytes: up,
                ..DirStats::default()
            },
            down: DirStats {
                bytes: down,
                ..DirStats::default()
            },
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: Some(name.to_owned()),
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new("Test", true, 3);
        let c1 = Ipv4::new(10, 0, 0, 1);
        let c2 = Ipv4::new(10, 0, 0, 2);
        let s1 = Ipv4::new(107, 22, 0, 1);
        let s2 = Ipv4::new(107, 22, 0, 2);
        ds.flows
            .push(flow("dl-client1.dropbox.com", c1, s1, 0, 50_000, 5_000));
        ds.flows
            .push(flow("dl-client2.dropbox.com", c1, s2, 0, 1_000, 90_000));
        ds.flows
            .push(flow("dl-client1.dropbox.com", c2, s1, 1, 2_000, 3_000));
        let mut notify = flow(
            "notify1.dropbox.com",
            c1,
            Ipv4::new(199, 47, 216, 33),
            0,
            900,
            500,
        );
        notify.notify = Some(NotifyMeta {
            host_int: 42,
            namespaces: vec![1, 2],
        });
        ds.flows.push(notify);
        ds.flows.push(flow(
            "r3.youtube.com",
            c2,
            Ipv4::new(74, 125, 0, 1),
            0,
            3_000,
            900_000,
        ));
        ds
    }

    #[test]
    fn overview_counts_all_traffic() {
        let ds = sample_dataset();
        let o = ds.overview();
        assert_eq!(o.ip_addrs, 2);
        let expected: u64 = ds.flows.iter().map(|f| f.total_bytes()).sum();
        assert_eq!(o.volume_bytes, expected);
    }

    #[test]
    fn dropbox_totals_exclude_youtube() {
        let ds = sample_dataset();
        let t = ds.dropbox_totals();
        assert_eq!(t.flows, 4);
        assert_eq!(t.devices, 1);
        assert!(t.volume_bytes < ds.overview().volume_bytes);
    }

    #[test]
    fn role_breakdown_fractions_sum_to_one() {
        let ds = sample_dataset();
        let shares = ds.role_breakdown();
        let bytes_sum: f64 = shares.values().map(|s| s.bytes_frac).sum();
        let flows_sum: f64 = shares.values().map(|s| s.flows_frac).sum();
        assert!((bytes_sum - 1.0).abs() < 1e-9);
        assert!((flows_sum - 1.0).abs() < 1e-9);
        assert!(shares["Client (storage)"].bytes_frac > 0.8);
    }

    #[test]
    fn storage_servers_per_day_counts_distinct() {
        let ds = sample_dataset();
        let per_day = ds.storage_servers_per_day();
        assert_eq!(per_day, vec![2, 1, 0]);
    }

    #[test]
    fn provider_series_tracks_days_and_ips() {
        let ds = sample_dataset();
        let series = ds.provider_series();
        let dropbox = &series[&Provider::Dropbox];
        assert_eq!(dropbox[0].ip_addrs, 1, "only c1 touches Dropbox on day 0");
        assert_eq!(dropbox[1].ip_addrs, 1, "c2 on day 1");
        let youtube = &series[&Provider::YouTube];
        assert!(youtube[0].bytes > 900_000);
        // Fig. 3-style share computation.
        let total = ds.daily_total_bytes();
        let dropbox_daily = ds.daily_bytes(Provider::Dropbox);
        assert!(dropbox_daily[0] < total[0]);
    }
}

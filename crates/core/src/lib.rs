//! The paper's analysis methodology — the primary contribution being
//! reproduced.
//!
//! Everything in this crate consumes only [`nettrace::FlowRecord`]s (the
//! monitor's per-flow export); nothing here touches generator state, so the
//! same functions would run unchanged on real Tstat logs:
//!
//! * [`classify`] — service classification from TLS/DNS names (Sec. 3.1),
//!   cloud-provider attribution (Sec. 3.3), Dropbox server-role breakdown
//!   (Fig. 4), and the `f(u)` store/retrieve tagger (Appendix A.2),
//! * [`chunks`] — PSH-based chunk-count estimation and its payload
//!   validation (Appendix A.3, Figs. 8 and 21),
//! * [`throughput`] — flow duration rules (Appendix A.4), throughput
//!   computation, and the TCP slow-start bound θ of Fig. 9,
//! * [`groups`] — household aggregation and the occasional / upload-only /
//!   download-only / heavy user taxonomy (Sec. 5.1, Table 5),
//! * [`sessions`] — device sessions from notification flows: start-ups,
//!   active devices, durations, namespaces (Secs. 5.2–5.5),
//! * [`users`] — account inference by namespace-list comparison
//!   (Sec. 2.3.1), scored against ground truth by the harness,
//! * [`dataset`] — the vantage-point dataset wrapper and summary tables,
//! * [`stream`] — the single-pass analysis substrate: the
//!   [`stream::Accumulate`] trait every analysis implements and the
//!   [`stream::Pipeline`] that fans one record stream out to all of them
//!   (mirroring the paper's on-line Tstat processing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunks;
pub mod classify;
pub mod dataset;
pub mod groups;
pub mod sessions;
pub mod stream;
pub mod throughput;
pub mod users;

pub use classify::{DropboxRole, Provider, StorageTag};
pub use dataset::Dataset;
pub use stream::{Accumulate, Pipeline};

//! Device sessions from notification flows (Secs. 5.2–5.5).
//!
//! The always-open notification connection delimits a device's session:
//! its duration is the session duration (Fig. 16 uses the raw flow
//! durations, which is why NAT-killed sub-minute flows appear in the home
//! curves), and a device's *session start* is the first notification flow
//! after a real gap (flows re-established within seconds after an abrupt
//! reset belong to the same logical session — Figs. 14/15 and Table 5
//! count those merged sessions).
//!
//! Every analysis here is a streaming accumulator ([`MergedSessionsAcc`]
//! …) observing one record at a time; the historical slice functions are
//! thin wrappers. Session merging needs flows time-ordered per device, so
//! [`MergedSessionsAcc`] keeps one compact observation per notification
//! flow (times, address, namespace list) and merges at `finish` — state
//! O(notification flows), a small fraction of the capture, never the
//! records themselves.

use crate::classify::{dropbox_role, storage_tag, DropboxRole, StorageTag};
use crate::stream::{run_one, Accumulate};
use nettrace::{FlowRecord, Ipv4};
use simcore::stats::OrderlessSum;
use simcore::time::CaptureCalendar;
use simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::mem::size_of;

/// Re-connections within this gap are the same logical session.
pub const MERGE_GAP: SimDuration = SimDuration::from_secs(30);

/// A merged device session.
#[derive(Clone, Debug)]
pub struct DeviceSession {
    /// Device identifier.
    pub host_int: u64,
    /// Household (client address).
    pub household: Ipv4,
    /// Session start.
    pub start: SimTime,
    /// Session end.
    pub end: SimTime,
    /// Last namespace list advertised during the session.
    pub namespaces: Vec<u64>,
}

impl DeviceSession {
    /// Session duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// One notification-flow observation: the only state session merging
/// needs per flow.
#[derive(Clone, Debug)]
struct NotifyObs {
    first_syn: SimTime,
    last_packet: SimTime,
    household: Ipv4,
    namespaces: Vec<u64>,
}

/// Streaming session merger: collects one compact observation per
/// notification flow and merges them into logical [`DeviceSession`]s at
/// `finish` (per-device time order, [`MERGE_GAP`] rule).
#[derive(Default)]
pub struct MergedSessionsAcc {
    per_dev: BTreeMap<u64, Vec<NotifyObs>>,
    obs_bytes: usize,
}

impl Accumulate for MergedSessionsAcc {
    type Output = Vec<DeviceSession>;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) == Some(DropboxRole::NotifyControl) {
            if let Some(meta) = &f.notify {
                self.obs_bytes += size_of::<NotifyObs>() + meta.namespaces.len() * size_of::<u64>();
                self.per_dev
                    .entry(meta.host_int)
                    .or_default()
                    .push(NotifyObs {
                        first_syn: f.first_syn,
                        last_packet: f.last_packet,
                        household: f.key.client.ip,
                        namespaces: meta.namespaces.clone(),
                    });
            }
        }
    }

    fn finish(self) -> Vec<DeviceSession> {
        let mut out = Vec::new();
        for (host_int, mut list) in self.per_dev {
            // Stable sort over arrival order == the historical sort over
            // the flow slice.
            list.sort_by_key(|o| o.first_syn);
            let mut current: Option<DeviceSession> = None;
            for o in list {
                match current.as_mut() {
                    Some(s)
                        if o.first_syn.saturating_since(s.end) <= MERGE_GAP
                            && o.household == s.household =>
                    {
                        s.end = s.end.max(o.last_packet);
                        s.namespaces = o.namespaces;
                    }
                    _ => {
                        if let Some(done) = current.take() {
                            out.push(done);
                        }
                        current = Some(DeviceSession {
                            host_int,
                            household: o.household,
                            start: o.first_syn,
                            end: o.last_packet,
                            namespaces: o.namespaces,
                        });
                    }
                }
            }
            if let Some(done) = current.take() {
                out.push(done);
            }
        }
        out.sort_by_key(|s| s.start);
        out
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.per_dev.len() * size_of::<u64>() + self.obs_bytes
    }
}

/// Streaming Fig. 16 sample: raw notification-flow durations in seconds.
#[derive(Default)]
pub struct RawDurationsAcc {
    durations: Vec<f64>,
}

impl Accumulate for RawDurationsAcc {
    type Output = Vec<f64>;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) == Some(DropboxRole::NotifyControl) {
            self.durations.push(f.duration().as_secs_f64());
        }
    }

    fn finish(self) -> Vec<f64> {
        self.durations
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.durations.len() * size_of::<f64>()
    }
}

/// Streaming distinct-device counter (any flow carrying notify metadata).
#[derive(Default)]
pub struct DistinctDevicesAcc {
    devices: BTreeSet<u64>,
}

impl Accumulate for DistinctDevicesAcc {
    type Output = usize;

    fn observe(&mut self, f: &FlowRecord) {
        if let Some(meta) = &f.notify {
            self.devices.insert(meta.host_int);
        }
    }

    fn finish(self) -> usize {
        self.devices.len()
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.devices.len() * size_of::<u64>()
    }
}

/// Streaming Fig. 12: devices per household address.
#[derive(Default)]
pub struct DevicesPerHouseholdAcc {
    map: BTreeMap<Ipv4, BTreeSet<u64>>,
}

impl Accumulate for DevicesPerHouseholdAcc {
    type Output = BTreeMap<Ipv4, usize>;

    fn observe(&mut self, f: &FlowRecord) {
        if let Some(meta) = &f.notify {
            self.map
                .entry(f.key.client.ip)
                .or_default()
                .insert(meta.host_int);
        }
    }

    fn finish(self) -> BTreeMap<Ipv4, usize> {
        self.map
            .into_iter()
            .map(|(ip, set)| (ip, set.len()))
            .collect()
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>()
            + self
                .map
                .values()
                .map(|set| size_of::<(Ipv4, BTreeSet<u64>)>() + set.len() * size_of::<u64>())
                .sum::<usize>()
    }
}

/// Streaming Fig. 13: last observed namespace count per device.
#[derive(Default)]
pub struct NamespacesPerDeviceAcc {
    latest: BTreeMap<u64, (SimTime, usize)>,
}

impl Accumulate for NamespacesPerDeviceAcc {
    type Output = BTreeMap<u64, usize>;

    fn observe(&mut self, f: &FlowRecord) {
        if let Some(meta) = &f.notify {
            let entry = self
                .latest
                .entry(meta.host_int)
                .or_insert((f.last_packet, 0));
            if f.last_packet >= entry.0 {
                *entry = (f.last_packet, meta.namespaces.len());
            }
        }
    }

    fn finish(self) -> BTreeMap<u64, usize> {
        self.latest.into_iter().map(|(h, (_, n))| (h, n)).collect()
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() + self.latest.len() * size_of::<(u64, (SimTime, usize))>()
    }
}

/// Streaming Fig. 14: fraction of devices starting a session per day.
#[derive(Default)]
pub struct StartupsAcc {
    days: u32,
    sessions: MergedSessionsAcc,
    devices: DistinctDevicesAcc,
}

impl StartupsAcc {
    /// Track `days` capture days.
    pub fn new(days: u32) -> Self {
        StartupsAcc {
            days,
            ..StartupsAcc::default()
        }
    }
}

impl Accumulate for StartupsAcc {
    type Output = Vec<f64>;

    fn observe(&mut self, f: &FlowRecord) {
        self.sessions.observe(f);
        self.devices.observe(f);
    }

    fn finish(self) -> Vec<f64> {
        let sessions = self.sessions.finish();
        let total_devices = self.devices.finish().max(1) as f64;
        let mut per_day: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); self.days as usize];
        for s in &sessions {
            let d = s.start.day() as usize;
            if d < per_day.len() {
                per_day[d].insert(s.host_int);
            }
        }
        per_day
            .into_iter()
            .map(|set| set.len() as f64 / total_devices)
            .collect()
    }

    fn state_bytes(&self) -> usize {
        self.sessions.state_bytes() + self.devices.state_bytes()
    }
}

/// Raw notification-flow durations in seconds (the Fig. 16 sample).
pub fn raw_session_durations(flows: &[FlowRecord]) -> Vec<f64> {
    run_one(flows, RawDurationsAcc::default())
}

/// Merge notification flows into logical device sessions.
pub fn merged_sessions(flows: &[FlowRecord]) -> Vec<DeviceSession> {
    run_one(flows, MergedSessionsAcc::default())
}

/// Distinct devices observed (by `host_int`) — Table 3's device counts.
pub fn distinct_devices(flows: &[FlowRecord]) -> usize {
    run_one(flows, DistinctDevicesAcc::default())
}

/// Devices per household (Fig. 12): household address → device count.
pub fn devices_per_household(flows: &[FlowRecord]) -> BTreeMap<Ipv4, usize> {
    run_one(flows, DevicesPerHouseholdAcc::default())
}

/// Last observed namespace count per device (Fig. 13).
pub fn namespaces_per_device(flows: &[FlowRecord]) -> BTreeMap<u64, usize> {
    run_one(flows, NamespacesPerDeviceAcc::default())
}

/// Fraction of all devices starting at least one session on each capture
/// day (Fig. 14).
pub fn startups_per_day(flows: &[FlowRecord], days: u32) -> Vec<f64> {
    run_one(flows, StartupsAcc::new(days))
}

/// The hourly profiles of Fig. 15, averaged over working days.
#[derive(Clone, Debug)]
pub struct HourlyProfiles {
    /// (a) fraction of devices starting a session per hour.
    pub startups: [f64; 24],
    /// (b) fraction of devices active (connected) per hour.
    pub active: [f64; 24],
    /// (c) fraction of total retrieved bytes per hour.
    pub retrieve: [f64; 24],
    /// (d) fraction of total stored bytes per hour.
    pub store: [f64; 24],
}

/// Streaming Fig. 15: the four hourly profiles over working days. The
/// storage-volume histograms fold per record in stream order (so float
/// summation order matches the historical flow loop), their normalising
/// totals accumulate order-insensitively (`OrderlessSum`), and the
/// session parts fold from the merged sessions at `finish`.
pub struct HourlyProfilesAcc {
    days: u32,
    sessions: MergedSessionsAcc,
    devices: DistinctDevicesAcc,
    retrieve: [f64; 24],
    store: [f64; 24],
    retr_total: OrderlessSum,
    store_total: OrderlessSum,
}

impl HourlyProfilesAcc {
    /// Track `days` capture days.
    pub fn new(days: u32) -> Self {
        HourlyProfilesAcc {
            days,
            sessions: MergedSessionsAcc::default(),
            devices: DistinctDevicesAcc::default(),
            retrieve: [0.0; 24],
            store: [0.0; 24],
            retr_total: OrderlessSum::new(),
            store_total: OrderlessSum::new(),
        }
    }
}

impl Accumulate for HourlyProfilesAcc {
    type Output = HourlyProfiles;

    fn observe(&mut self, f: &FlowRecord) {
        self.sessions.observe(f);
        self.devices.observe(f);
        if dropbox_role(f) != Some(DropboxRole::ClientStorage)
            || !CaptureCalendar::is_working_day(f.first_syn.day())
        {
            return;
        }
        let (up, down) = crate::classify::ssl_adjusted(f);
        let h = f.first_syn.hour() as usize;
        match storage_tag(f) {
            StorageTag::Store => {
                self.store[h] += up as f64;
                self.store_total.add(up as f64);
            }
            StorageTag::Retrieve => {
                self.retrieve[h] += down as f64;
                self.retr_total.add(down as f64);
            }
        }
    }

    fn finish(self) -> HourlyProfiles {
        let sessions = self.sessions.finish();
        let total_devices = self.devices.finish().max(1) as f64;
        let working_days: Vec<u32> = (0..self.days)
            .filter(|&d| CaptureCalendar::is_working_day(d))
            .collect();
        let n_working = working_days.len().max(1) as f64;
        let is_working = |t: SimTime| CaptureCalendar::is_working_day(t.day());

        let mut startups = [0.0f64; 24];
        let mut active = [0.0f64; 24];
        for s in &sessions {
            if is_working(s.start) {
                startups[s.start.hour() as usize] += 1.0;
            }
            // Active during every hour bin the session overlaps, on working days.
            let mut t = s.start;
            let end = s.end.min(s.start + SimDuration::from_days(7));
            while t <= end {
                if is_working(t) {
                    active[t.hour() as usize] += 1.0;
                }
                t += SimDuration::from_hours(1);
            }
        }
        for v in &mut startups {
            *v /= total_devices * n_working;
        }
        for v in &mut active {
            *v /= total_devices * n_working;
        }

        let mut retrieve = self.retrieve;
        let mut store = self.store;
        let retr_total = self.retr_total.value();
        let store_total = self.store_total.value();
        if retr_total > 0.0 {
            for v in &mut retrieve {
                *v /= retr_total;
            }
        }
        if store_total > 0.0 {
            for v in &mut store {
                *v /= store_total;
            }
        }

        HourlyProfiles {
            startups,
            active,
            retrieve,
            store,
        }
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() - size_of::<MergedSessionsAcc>() - size_of::<DistinctDevicesAcc>()
            + self.sessions.state_bytes()
            + self.devices.state_bytes()
    }
}

/// Streaming holiday-dip ratio (see [`holiday_dip`]).
#[derive(Default)]
pub struct HolidayDipAcc {
    startups: StartupsAcc,
}

impl HolidayDipAcc {
    /// Track `days` capture days.
    pub fn new(days: u32) -> Self {
        HolidayDipAcc {
            startups: StartupsAcc::new(days),
        }
    }
}

impl Accumulate for HolidayDipAcc {
    type Output = Option<f64>;

    fn observe(&mut self, f: &FlowRecord) {
        self.startups.observe(f);
    }

    fn finish(self) -> Option<f64> {
        let series = self.startups.finish();
        let mut holiday = Vec::new();
        let mut working = Vec::new();
        for (d, &v) in series.iter().enumerate() {
            let d = d as u32;
            if CaptureCalendar::is_holiday(d) {
                holiday.push(v);
            } else if CaptureCalendar::is_working_day(d) {
                working.push(v);
            }
        }
        if holiday.is_empty() || working.is_empty() {
            return None;
        }
        let mean = |v: &[f64]| {
            let mut s = OrderlessSum::new();
            for &x in v {
                s.add(x);
            }
            s.value() / v.len() as f64
        };
        let w = mean(&working);
        (w > 0.0).then(|| mean(&holiday) / w)
    }

    fn state_bytes(&self) -> usize {
        self.startups.state_bytes()
    }
}

/// Compute Fig. 15's four hourly profiles over working days.
pub fn hourly_profiles(flows: &[FlowRecord], days: u32) -> HourlyProfiles {
    run_one(flows, HourlyProfilesAcc::new(days))
}

/// Holiday effect on device start-ups (the paper notes "exceptions around
/// holidays in April and May" in Fig. 14): mean start-up fraction on
/// holidays divided by the mean on ordinary working days. `None` when the
/// capture has no holiday or no working day with data.
pub fn holiday_dip(flows: &[FlowRecord], days: u32) -> Option<f64> {
    run_one(flows, HolidayDipAcc::new(days))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose, NotifyMeta};
    use nettrace::{Endpoint, FlowKey};

    fn notify_flow(
        ip: Ipv4,
        host_int: u64,
        namespaces: Vec<u64>,
        start_s: u64,
        end_s: u64,
    ) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(ip, 40_000 + (start_s % 1000) as u16),
                Endpoint::new(Ipv4::new(199, 47, 216, 33), 80),
            ),
            first_syn: SimTime::from_secs(start_s),
            last_packet: SimTime::from_secs(end_s),
            up: DirStats::default(),
            down: DirStats::default(),
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: None,
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: Some("notify1.dropbox.com".into()),
            notify: Some(NotifyMeta {
                host_int,
                namespaces,
            }),
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn nat_fragments_merge_into_one_session() {
        let ip = Ipv4::new(10, 1, 0, 1);
        let flows = vec![
            notify_flow(ip, 7, vec![1], 1_000, 1_050),
            notify_flow(ip, 7, vec![1], 1_055, 1_110), // 5 s gap: same session
            notify_flow(ip, 7, vec![1], 5_000, 6_000), // new session
        ];
        let sessions = merged_sessions(&flows);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].duration().secs(), 110);
        assert_eq!(sessions[1].duration().secs(), 1_000);
        // But the raw durations (Fig. 16) keep all three flows.
        assert_eq!(raw_session_durations(&flows).len(), 3);
    }

    #[test]
    fn device_and_household_counts() {
        let a = Ipv4::new(10, 1, 0, 1);
        let b = Ipv4::new(10, 1, 0, 2);
        let flows = vec![
            notify_flow(a, 1, vec![10], 0, 100),
            notify_flow(a, 2, vec![10, 11], 0, 100),
            notify_flow(b, 3, vec![12], 0, 100),
        ];
        assert_eq!(distinct_devices(&flows), 3);
        let per_hh = devices_per_household(&flows);
        assert_eq!(per_hh[&a], 2);
        assert_eq!(per_hh[&b], 1);
    }

    #[test]
    fn namespace_counts_use_last_observation() {
        let ip = Ipv4::new(10, 1, 0, 1);
        let flows = vec![
            notify_flow(ip, 1, vec![10], 0, 100),
            notify_flow(ip, 1, vec![10, 11, 12], 200, 300),
        ];
        let ns = namespaces_per_device(&flows);
        assert_eq!(ns[&1], 3);
    }

    #[test]
    fn startups_per_day_fractions() {
        let ip = Ipv4::new(10, 1, 0, 1);
        let day = 86_400u64;
        let flows = vec![
            notify_flow(ip, 1, vec![1], 10, 100),
            notify_flow(ip, 2, vec![2], 20, 120),
            notify_flow(ip, 1, vec![1], day + 10, day + 500),
        ];
        let s = startups_per_day(&flows, 3);
        assert_eq!(s.len(), 3);
        assert!((s[0] - 1.0).abs() < 1e-9, "both devices start on day 0");
        assert!((s[1] - 0.5).abs() < 1e-9, "one of two devices on day 1");
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn holiday_dip_detects_reduced_startups() {
        let ip = Ipv4::new(10, 1, 0, 1);
        let mut flows = Vec::new();
        // Sessions on every ordinary working day for two devices, none on
        // the holidays (days 15, 16, 32, 38).
        for d in 0..42u32 {
            if CaptureCalendar::is_working_day(d) {
                let t = d as u64 * 86_400 + 9 * 3_600;
                flows.push(notify_flow(ip, 1, vec![1], t, t + 3_600));
                flows.push(notify_flow(ip, 2, vec![2], t + 60, t + 3_700));
            }
        }
        // Holidays exist but have zero start-ups.
        let dip = holiday_dip(&flows, 42).expect("dip computable");
        assert_eq!(dip, 0.0);
        // Add a holiday session for one device: dip becomes 0 < x < 1.
        let hday = 32u64 * 86_400 + 10 * 3_600;
        flows.push(notify_flow(ip, 1, vec![1], hday, hday + 1_000));
        let dip = holiday_dip(&flows, 42).expect("dip computable");
        assert!(dip > 0.0 && dip < 1.0, "dip {dip}");
    }

    #[test]
    fn hourly_startups_land_in_right_bin() {
        let ip = Ipv4::new(10, 1, 0, 1);
        // Day 2 is a Monday (working day); 10:30 start.
        let start = 2 * 86_400 + 10 * 3_600 + 1_800;
        let flows = vec![notify_flow(ip, 1, vec![1], start, start + 3 * 3_600)];
        let p = hourly_profiles(&flows, 42);
        assert!(p.startups[10] > 0.0);
        assert_eq!(p.startups[9], 0.0);
        // Active in hours 10..13.
        assert!(p.active[11] > 0.0 && p.active[13] > 0.0);
    }
}

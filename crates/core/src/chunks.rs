//! Chunk-count estimation from PSH flags (Appendix A.3).
//!
//! The number of chunks in a storage flow is estimated from the TCP
//! segments with the PSH flag set in the **reverse** direction of the
//! transfer:
//!
//! * retrieve flows: each HTTP request is two pushed segments, plus the two
//!   client TLS-handshake pushes ⇒ `c = (s − 2) / 2`,
//! * store flows: the server pushes two TLS-handshake records, one `ok`
//!   per chunk, and — when it is the server that closes the idle
//!   connection — one close alert ⇒ `c = s − 3`, otherwise `c = s − 2`.
//!   Which case applies is inferred from the gap between the last payload
//!   packets of the two directions (≈ 1 minute ⇒ server closed).
//!
//! The estimate is validated by dividing the reverse-direction payload
//! (minus SSL handshake) by `c`: store flows cluster at ~309 bytes per
//! chunk, retrieve flows inside 362–426 (Fig. 21).

use crate::classify::{storage_tag, StorageTag, SSL_CLIENT_OVERHEAD, SSL_SERVER_OVERHEAD};
use nettrace::FlowRecord;
use simcore::SimDuration;

/// Gap between last server payload and last client payload above which the
/// close is attributed to the server's 60 s idle timeout.
const SERVER_CLOSE_GAP: SimDuration = SimDuration::from_secs(55);

/// Estimate the number of chunks transported by a (client-)storage flow.
///
/// Returns 0 for flows too small to contain any storage operation.
pub fn estimate_chunks(flow: &FlowRecord) -> u32 {
    match storage_tag(flow) {
        StorageTag::Retrieve => {
            let s = flow.up.psh_segments;
            (s.saturating_sub(2) / 2) as u32
        }
        StorageTag::Store => {
            let s = flow.down.psh_segments;
            let server_closed = match (flow.down.last_payload, flow.up.last_payload) {
                (Some(d), Some(u)) => d.saturating_since(u) >= SERVER_CLOSE_GAP,
                _ => false,
            };
            let overhead = if server_closed { 3 } else { 2 };
            s.saturating_sub(overhead) as u32
        }
    }
}

/// The validation quantity of Fig. 21: reverse-direction payload (without
/// the SSL handshake) divided by the estimated chunk count. `None` when
/// the estimate is zero.
pub fn reverse_payload_per_chunk(flow: &FlowRecord) -> Option<f64> {
    let c = estimate_chunks(flow);
    if c == 0 {
        return None;
    }
    let reverse_payload = match storage_tag(flow) {
        StorageTag::Store => flow.down.bytes.saturating_sub(SSL_SERVER_OVERHEAD),
        StorageTag::Retrieve => flow.up.bytes.saturating_sub(SSL_CLIENT_OVERHEAD),
    };
    Some(reverse_payload as f64 / c as f64)
}

/// Chunk-count group used in Figs. 9 and 10's legends.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChunkGroup {
    /// Exactly 1 chunk.
    One,
    /// 2–5 chunks.
    TwoToFive,
    /// 6–50 chunks.
    SixToFifty,
    /// 51–100 chunks.
    FiftyOneToHundred,
}

impl ChunkGroup {
    /// Group of an estimated chunk count (counts above 100 cannot occur in
    /// protocol-conformant flows but are clamped defensively).
    pub fn of(chunks: u32) -> ChunkGroup {
        match chunks {
            0 | 1 => ChunkGroup::One,
            2..=5 => ChunkGroup::TwoToFive,
            6..=50 => ChunkGroup::SixToFifty,
            _ => ChunkGroup::FiftyOneToHundred,
        }
    }

    /// All groups in legend order.
    pub const ALL: [ChunkGroup; 4] = [
        ChunkGroup::One,
        ChunkGroup::TwoToFive,
        ChunkGroup::SixToFifty,
        ChunkGroup::FiftyOneToHundred,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            ChunkGroup::One => "1",
            ChunkGroup::TwoToFive => "2-5",
            ChunkGroup::SixToFifty => "6-50",
            ChunkGroup::FiftyOneToHundred => "51-100",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose};
    use nettrace::{Endpoint, FlowKey, Ipv4};
    use simcore::SimTime;

    fn storage_flow(
        up_bytes: u64,
        down_bytes: u64,
        up_psh: u64,
        down_psh: u64,
        last_up_s: u64,
        last_down_s: u64,
    ) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::EPOCH,
            last_packet: SimTime::from_secs(last_down_s.max(last_up_s)),
            up: DirStats {
                bytes: up_bytes,
                psh_segments: up_psh,
                last_payload: Some(SimTime::from_secs(last_up_s)),
                first_payload: Some(SimTime::from_secs(1)),
                ..DirStats::default()
            },
            down: DirStats {
                bytes: down_bytes,
                psh_segments: down_psh,
                last_payload: Some(SimTime::from_secs(last_down_s)),
                first_payload: Some(SimTime::from_secs(1)),
                ..DirStats::default()
            },
            min_rtt_ms: Some(90.0),
            rtt_samples: 12,
            tls_sni: Some("dl-client1.dropbox.com".into()),
            tls_certificate_cn: Some("*.dropbox.com".into()),
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Rst,
            aborted: false,
        }
    }

    #[test]
    fn store_with_server_close_uses_s_minus_3() {
        // 5 chunks: server PSH = 2 handshake + 5 OK + 1 alert = 8;
        // the alert comes 60 s after the client's last data.
        let f = storage_flow(294 + 5 * 20_000, 4103 + 5 * 309 + 37, 7, 8, 10, 70);
        assert_eq!(estimate_chunks(&f), 5);
    }

    #[test]
    fn store_with_client_close_uses_s_minus_2() {
        // Client closed right away: no alert, server PSH = 2 + 5 = 7.
        let f = storage_flow(294 + 5 * 20_000, 4103 + 5 * 309, 7, 7, 10, 11);
        assert_eq!(estimate_chunks(&f), 5);
    }

    #[test]
    fn retrieve_uses_half_of_client_pushes() {
        // 4 chunks: client PSH = 2 handshake + 4 requests × 2 = 10.
        let f = storage_flow(294 + 4 * 400, 4103 + 4 * (309 + 50_000), 10, 6, 10, 12);
        assert_eq!(estimate_chunks(&f), 4);
    }

    #[test]
    fn handshake_only_flow_estimates_zero() {
        let f = storage_flow(294, 4103, 2, 2, 1, 1);
        assert_eq!(estimate_chunks(&f), 0);
        assert_eq!(reverse_payload_per_chunk(&f), None);
    }

    #[test]
    fn store_validation_near_309() {
        let c = 10u64;
        let f = storage_flow(
            294 + c * (634 + 5_000),
            4103 + c * 309 + 37,
            2 + c,
            2 + c + 1,
            10,
            70,
        );
        let v = reverse_payload_per_chunk(&f).unwrap();
        assert!((v - 309.0).abs() < 10.0, "v = {v}");
    }

    #[test]
    fn retrieve_validation_in_362_426() {
        let c = 8u64;
        let f = storage_flow(
            294 + c * 400,
            4103 + c * (309 + 80_000),
            2 + 2 * c,
            2 + c,
            10,
            12,
        );
        let v = reverse_payload_per_chunk(&f).unwrap();
        assert!((362.0..=426.0).contains(&v), "v = {v}");
    }

    #[test]
    fn chunk_groups_cover_legend() {
        assert_eq!(ChunkGroup::of(1), ChunkGroup::One);
        assert_eq!(ChunkGroup::of(0), ChunkGroup::One);
        assert_eq!(ChunkGroup::of(3), ChunkGroup::TwoToFive);
        assert_eq!(ChunkGroup::of(50), ChunkGroup::SixToFifty);
        assert_eq!(ChunkGroup::of(100), ChunkGroup::FiftyOneToHundred);
    }
}

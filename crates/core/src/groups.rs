//! Household aggregation and the user-group taxonomy (Sec. 5.1, Table 5).
//!
//! Home customers have static IP addresses, so an address identifies a
//! household. Per household the paper accumulates the SSL-adjusted store
//! and retrieve volumes of the Dropbox client's storage flows, the devices
//! seen behind the address (from notification `host_int`s), the days with
//! any Dropbox activity, and the sessions; it then sorts households into
//! four groups:
//!
//! * **occasional** — less than 10 kB in both directions,
//! * **upload-only** — more than three orders of magnitude more stored
//!   than retrieved,
//! * **download-only** — the converse,
//! * **heavy** — everything else.

use crate::classify::{dropbox_role, ssl_adjusted, storage_tag, DropboxRole, StorageTag};
use crate::sessions::MergedSessionsAcc;
use crate::stream::{run_one, Accumulate};
use nettrace::{FlowRecord, Ipv4};
use std::collections::{BTreeMap, BTreeSet};
use std::mem::size_of;

/// Activity of one household (one client address).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HouseholdUsage {
    /// Whether the Dropbox *client application* was observed (storage,
    /// meta-data, or notification traffic). Households that only touch the
    /// web interface are excluded from the Sec. 5 analyses, which "account
    /// only for transfers made from the Dropbox client".
    pub client_seen: bool,
    /// SSL-adjusted bytes stored from this address (client storage flows).
    pub store_bytes: u64,
    /// SSL-adjusted bytes retrieved to this address.
    pub retrieve_bytes: u64,
    /// Devices observed behind the address.
    pub devices: BTreeSet<u64>,
    /// Days (capture-day indices) with any Dropbox activity.
    pub days_online: BTreeSet<u32>,
    /// Merged device sessions started from this address.
    pub sessions: u32,
}

/// The four user groups of Sec. 5.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum UserGroup {
    /// Clients left running, hardly any data exchanged.
    Occasional,
    /// Predominantly submitting content.
    UploadOnly,
    /// Predominantly fetching content.
    DownloadOnly,
    /// Both directions in volume.
    Heavy,
}

impl UserGroup {
    /// All groups in Table 5's row order.
    pub const ALL: [UserGroup; 4] = [
        UserGroup::Occasional,
        UserGroup::UploadOnly,
        UserGroup::DownloadOnly,
        UserGroup::Heavy,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            UserGroup::Occasional => "Occasional",
            UserGroup::UploadOnly => "Upload-only",
            UserGroup::DownloadOnly => "Download-only",
            UserGroup::Heavy => "Heavy",
        }
    }
}

/// Threshold below which a direction counts as "no data" (10 kB).
pub const OCCASIONAL_THRESHOLD: u64 = 10_000;
/// Ratio qualifying as "orders of magnitude" difference (10³).
pub const DOMINANCE_RATIO: f64 = 1_000.0;

/// Classify a household by the paper's heuristics.
pub fn group_of(h: &HouseholdUsage) -> UserGroup {
    let up = h.store_bytes;
    let down = h.retrieve_bytes;
    if up < OCCASIONAL_THRESHOLD && down < OCCASIONAL_THRESHOLD {
        return UserGroup::Occasional;
    }
    let upf = up.max(1) as f64;
    let downf = down.max(1) as f64;
    if upf / downf >= DOMINANCE_RATIO {
        UserGroup::UploadOnly
    } else if downf / upf >= DOMINANCE_RATIO {
        UserGroup::DownloadOnly
    } else {
        UserGroup::Heavy
    }
}

/// Streaming household aggregation: per-flow usage folds in stream
/// order; session counts come from the embedded merged-session
/// accumulator at `finish`, after which web-only households are dropped
/// (Sec. 5 accounts only for client transfers).
#[derive(Default)]
pub struct HouseholdsAcc {
    map: BTreeMap<Ipv4, HouseholdUsage>,
    sessions: MergedSessionsAcc,
}

impl Accumulate for HouseholdsAcc {
    type Output = BTreeMap<Ipv4, HouseholdUsage>;

    fn observe(&mut self, f: &FlowRecord) {
        self.sessions.observe(f);
        let Some(role) = dropbox_role(f) else {
            return;
        };
        let h = self.map.entry(f.key.client.ip).or_default();
        h.days_online.insert(f.first_syn.day());
        match role {
            DropboxRole::ClientStorage => {
                h.client_seen = true;
                let (up, down) = ssl_adjusted(f);
                match storage_tag(f) {
                    StorageTag::Store => h.store_bytes += up,
                    StorageTag::Retrieve => h.retrieve_bytes += down,
                }
            }
            DropboxRole::ClientControl => {
                h.client_seen = true;
            }
            DropboxRole::NotifyControl => {
                h.client_seen = true;
                if let Some(meta) = &f.notify {
                    h.devices.insert(meta.host_int);
                }
            }
            _ => {}
        }
    }

    fn finish(self) -> BTreeMap<Ipv4, HouseholdUsage> {
        let mut map = self.map;
        // Session counts come from the merged notification sessions.
        for s in self.sessions.finish() {
            if let Some(h) = map.get_mut(&s.household) {
                h.sessions += 1;
            }
        }
        // Only households running the client participate (Sec. 5).
        map.retain(|_, h| h.client_seen);
        map
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>() - size_of::<MergedSessionsAcc>()
            + self.sessions.state_bytes()
            + self
                .map
                .values()
                .map(|h| {
                    size_of::<(Ipv4, HouseholdUsage)>()
                        + h.devices.len() * size_of::<u64>()
                        + h.days_online.len() * size_of::<u32>()
                })
                .sum::<usize>()
    }
}

/// Aggregate a dataset's flows into per-household usage.
pub fn aggregate_households(flows: &[FlowRecord]) -> BTreeMap<Ipv4, HouseholdUsage> {
    run_one(flows, HouseholdsAcc::default())
}

/// One row of Table 5.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupRow {
    /// Fraction of household addresses in the group.
    pub addr_frac: f64,
    /// Fraction of sessions contributed by the group.
    pub session_frac: f64,
    /// Total retrieved bytes.
    pub retrieve_bytes: u64,
    /// Total stored bytes.
    pub store_bytes: u64,
    /// Average days on-line.
    pub avg_days: f64,
    /// Average devices per household.
    pub avg_devices: f64,
}

/// Compute Table 5 for a set of households.
pub fn table5(households: &BTreeMap<Ipv4, HouseholdUsage>) -> BTreeMap<UserGroup, GroupRow> {
    let total_addrs = households.len().max(1) as f64;
    let total_sessions: u64 = households.values().map(|h| h.sessions as u64).sum();
    let mut rows: BTreeMap<UserGroup, GroupRow> = UserGroup::ALL
        .into_iter()
        .map(|g| (g, GroupRow::default()))
        .collect();
    let mut counts: BTreeMap<UserGroup, u64> = BTreeMap::new();
    let mut day_sums: BTreeMap<UserGroup, u64> = BTreeMap::new();
    let mut dev_sums: BTreeMap<UserGroup, u64> = BTreeMap::new();

    for h in households.values() {
        let g = group_of(h);
        let row = rows.get_mut(&g).expect("all groups present");
        row.retrieve_bytes += h.retrieve_bytes;
        row.store_bytes += h.store_bytes;
        row.session_frac += h.sessions as f64;
        *counts.entry(g).or_default() += 1;
        *day_sums.entry(g).or_default() += h.days_online.len() as u64;
        // Households without an observed notify flow still have ≥1 device.
        *dev_sums.entry(g).or_default() += h.devices.len().max(1) as u64;
    }
    for (g, row) in rows.iter_mut() {
        let n = counts.get(g).copied().unwrap_or(0);
        row.addr_frac = n as f64 / total_addrs;
        row.session_frac = if total_sessions > 0 {
            row.session_frac / total_sessions as f64
        } else {
            0.0
        };
        if n > 0 {
            row.avg_days = day_sums[g] as f64 / n as f64;
            row.avg_devices = dev_sums[g] as f64 / n as f64;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(store: u64, retrieve: u64) -> HouseholdUsage {
        HouseholdUsage {
            store_bytes: store,
            retrieve_bytes: retrieve,
            ..HouseholdUsage::default()
        }
    }

    #[test]
    fn group_heuristics_match_section_5_1() {
        assert_eq!(group_of(&usage(0, 0)), UserGroup::Occasional);
        assert_eq!(group_of(&usage(9_999, 9_999)), UserGroup::Occasional);
        assert_eq!(
            group_of(&usage(1_000_000_000, 900_000)),
            UserGroup::UploadOnly
        );
        assert_eq!(
            group_of(&usage(900_000, 1_000_000_000)),
            UserGroup::DownloadOnly
        );
        assert_eq!(group_of(&usage(50_000_000, 20_000_000)), UserGroup::Heavy);
        // The paper's example: 1 GB vs 1 MB is exactly 3 orders.
        assert_eq!(
            group_of(&usage(1_000_000_000, 1_000_000)),
            UserGroup::UploadOnly
        );
    }

    #[test]
    fn zero_direction_counts_as_dominant() {
        assert_eq!(group_of(&usage(50_000, 0)), UserGroup::UploadOnly);
        assert_eq!(group_of(&usage(0, 50_000)), UserGroup::DownloadOnly);
    }

    #[test]
    fn boundary_below_threshold_is_occasional_even_if_skewed() {
        // 9 kB up, nothing down: still occasional (both under 10 kB).
        assert_eq!(group_of(&usage(9_000, 0)), UserGroup::Occasional);
    }

    #[test]
    fn table5_fractions_sum_to_one() {
        let mut households = BTreeMap::new();
        let specs = [
            (0u64, 0u64),
            (5_000, 2_000),
            (80_000_000, 10_000),
            (20_000, 90_000_000),
            (40_000_000, 30_000_000),
            (60_000_000, 50_000_000),
        ];
        for (i, &(s, r)) in specs.iter().enumerate() {
            let mut h = usage(s, r);
            h.sessions = (i + 1) as u32;
            h.days_online.insert(i as u32);
            households.insert(Ipv4::new(10, 0, 0, i as u8), h);
        }
        let t = table5(&households);
        let addr_sum: f64 = t.values().map(|r| r.addr_frac).sum();
        let sess_sum: f64 = t.values().map(|r| r.session_frac).sum();
        assert!((addr_sum - 1.0).abs() < 1e-9);
        assert!((sess_sum - 1.0).abs() < 1e-9);
        assert_eq!(t[&UserGroup::Occasional].addr_frac, 2.0 / 6.0);
        assert_eq!(t[&UserGroup::Heavy].addr_frac, 2.0 / 6.0);
        // Heavy households hold the volume.
        assert!(t[&UserGroup::Heavy].store_bytes > t[&UserGroup::UploadOnly].store_bytes);
    }

    #[test]
    fn table5_empty_input() {
        let t = table5(&BTreeMap::new());
        assert_eq!(t.len(), 4);
        assert!(t.values().all(|r| r.addr_frac == 0.0));
    }
}

//! Single-pass streaming analysis: the accumulator trait and the fan-out
//! pipeline.
//!
//! The paper's probes ran Tstat on-line — per-flow records were folded
//! into the analyses as flows closed, never holding a capture in RAM.
//! This module is that architecture for the reproduction: every analysis
//! in this crate is an [`Accumulate`] implementation (`observe` one
//! record at a time, `finish` into the legacy result type), and a
//! [`Pipeline`] fans one record stream out to all registered accumulators
//! so the whole analysis happens in **one pass** over the capture.
//!
//! Determinism: accumulators observe records in capture order (the
//! monitor's finalisation order — see `nettrace::sink`), and every
//! `finish` folds its state in a deterministic (keyed or arrival) order,
//! so a pipeline pass is byte-identical to the legacy whole-`Vec`
//! computation it replaced. `crates/core/tests/stream_props.rs` pins this
//! equivalence on randomized flow sets.
//!
//! Memory: aggregate accumulators (totals, per-day/per-role maps) hold
//! state bounded by the analysis dimensions (days, roles, addresses),
//! independent of flow count. Distribution accumulators keep one sample
//! per matching flow because the byte-identity contract demands exact
//! ECDF point sets; [`Observe::state_bytes`] reports the live state so
//! the streaming bench (`BENCH_stream.json`) can track both kinds.

use nettrace::{FlowRecord, FlowSink};

/// An incremental analysis: folds a record stream into a result.
///
/// Implementations must be insensitive to anything but the sequence of
/// observed records — two passes over the same stream yield identical
/// outputs.
pub trait Accumulate {
    /// The finished analysis result (the legacy return type).
    type Output;

    /// Fold one record into the state.
    fn observe(&mut self, flow: &FlowRecord);

    /// Consume the state into the result.
    fn finish(self) -> Self::Output;

    /// Estimated live state size in bytes (for the streaming bench).
    /// The default covers fixed-size accumulators; container-holding
    /// implementations should override with a capacity-based estimate.
    fn state_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>()
    }
}

/// Object-safe view of an accumulator, so a [`Pipeline`] can hold
/// heterogeneous registrations. Blanket-implemented for every
/// [`Accumulate`]; never implement it directly.
pub trait Observe {
    /// Fold one record into the state.
    fn observe_record(&mut self, flow: &FlowRecord);

    /// Estimated live state size in bytes.
    fn state_bytes(&self) -> usize;
}

impl<A: Accumulate> Observe for A {
    fn observe_record(&mut self, flow: &FlowRecord) {
        self.observe(flow);
    }

    fn state_bytes(&self) -> usize {
        Accumulate::state_bytes(self)
    }
}

/// Fan one record stream out to every registered accumulator, in
/// registration order, in a single pass.
///
/// The pipeline borrows its accumulators, so after the pass the caller
/// still owns them and calls [`Accumulate::finish`] on each. It is a
/// [`FlowSink`], so a monitor or driver can emit completed flows straight
/// into the analyses without materialising a record vector.
#[derive(Default)]
pub struct Pipeline<'a> {
    stages: Vec<&'a mut dyn Observe>,
    records: u64,
}

impl<'a> Pipeline<'a> {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            records: 0,
        }
    }

    /// Register an accumulator; records observed from now on are fanned
    /// out to it (after all earlier registrations).
    pub fn register(&mut self, acc: &'a mut dyn Observe) -> &mut Self {
        self.stages.push(acc);
        self
    }

    /// Fan one record out to every registered accumulator.
    pub fn observe(&mut self, flow: &FlowRecord) {
        for stage in &mut self.stages {
            stage.observe_record(flow);
        }
        self.records += 1;
    }

    /// Records observed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Number of registered accumulators.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Total estimated live state across all registered accumulators.
    pub fn state_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.state_bytes()).sum()
    }

    /// Drive the pipeline over an in-memory record sequence (the
    /// compatibility path for already-materialised captures).
    pub fn run<'f>(&mut self, flows: impl IntoIterator<Item = &'f FlowRecord>) {
        for f in flows {
            self.observe(f);
        }
    }
}

impl FlowSink for Pipeline<'_> {
    fn accept(&mut self, flow: FlowRecord) {
        self.observe(&flow);
    }
}

/// Run a single accumulator over an in-memory record sequence — the
/// shim every legacy whole-`Vec` entry point reduces to.
pub fn run_one<'f, A: Accumulate>(
    flows: impl IntoIterator<Item = &'f FlowRecord>,
    mut acc: A,
) -> A::Output {
    for f in flows {
        acc.observe(f);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose};
    use nettrace::{Endpoint, FlowKey, Ipv4};
    use simcore::SimTime;

    /// A toy accumulator: counts records and sums total bytes.
    #[derive(Default)]
    struct Totals {
        records: u64,
        bytes: u64,
    }

    impl Accumulate for Totals {
        type Output = (u64, u64);

        fn observe(&mut self, flow: &FlowRecord) {
            self.records += 1;
            self.bytes += flow.total_bytes();
        }

        fn finish(self) -> (u64, u64) {
            (self.records, self.bytes)
        }
    }

    fn record(up: u64, down: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::from_secs(1),
            last_packet: SimTime::from_secs(2),
            up: DirStats {
                bytes: up,
                ..DirStats::default()
            },
            down: DirStats {
                bytes: down,
                ..DirStats::default()
            },
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: None,
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn pipeline_fans_out_to_all_stages() {
        let mut a = Totals::default();
        let mut b = Totals::default();
        let flows = vec![record(10, 20), record(1, 2)];
        {
            let mut p = Pipeline::new();
            p.register(&mut a).register(&mut b);
            assert_eq!(p.stages(), 2);
            p.run(&flows);
            assert_eq!(p.records(), 2);
            assert!(p.state_bytes() >= 2 * std::mem::size_of::<Totals>());
        }
        assert_eq!(a.finish(), (2, 33));
        assert_eq!(b.finish(), (2, 33));
    }

    #[test]
    fn pipeline_is_a_flow_sink() {
        let mut a = Totals::default();
        {
            let mut p = Pipeline::new();
            p.register(&mut a);
            p.accept(record(5, 5));
            p.accept(record(5, 5));
        }
        assert_eq!(a.finish(), (2, 20));
    }

    #[test]
    fn run_one_matches_manual_fold() {
        let flows = vec![record(10, 20), record(1, 2), record(0, 7)];
        let streamed = run_one(&flows, Totals::default());
        let mut manual = Totals::default();
        for f in &flows {
            manual.observe(f);
        }
        assert_eq!(streamed, manual.finish());
    }
}

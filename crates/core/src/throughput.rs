//! Flow durations, throughput, and the slow-start bound θ
//! (Sec. 4.4 and Appendix A.4).
//!
//! Durations follow the paper's rules: a transfer starts at the first SYN
//! (TCP/SSL handshakes are part of the user-perceived latency); a *store*
//! ends at the last payload packet from the client; a *retrieve* ends at
//! the last payload from the server, compensated by −60 s when the last
//! server payload is the idle-timeout close alert. Throughput divides the
//! SSL-adjusted transferred bytes by that duration.
//!
//! θ is the maximum throughput achievable by a flow that stays in TCP slow
//! start, computed as in Dukkipati et al. \[4\] with an initial congestion
//! window of 3 segments, adjusted for the 3 RTTs of TCP+SSL handshakes.

use crate::classify::{storage_tag, transfer_size, StorageTag};
use nettrace::FlowRecord;
use simcore::SimDuration;

/// Idle period of storage connections; the close alert trails the last
/// client payload by this much when the server times the connection out.
const IDLE_CLOSE: SimDuration = SimDuration::from_secs(60);

/// Effective transfer duration of a tagged storage flow (Appendix A.4).
/// Returns `None` for flows without payload in the transfer direction.
pub fn transfer_duration(flow: &FlowRecord) -> Option<SimDuration> {
    match storage_tag(flow) {
        StorageTag::Store => {
            let end = flow.up.last_payload?;
            Some(end.saturating_since(flow.first_syn))
        }
        StorageTag::Retrieve => {
            let end = flow.down.last_payload?;
            let mut d = end.saturating_since(flow.first_syn);
            // Compensate for the 60 s idle-timeout alert: when the last
            // server payload trails the last client payload by more than
            // a minute, subtract the idle interval.
            if let Some(last_up) = flow.up.last_payload {
                if end.saturating_since(last_up) > IDLE_CLOSE {
                    d -= IDLE_CLOSE;
                }
            }
            Some(d)
        }
    }
}

/// Throughput of a storage flow in bits/s: SSL-adjusted transferred bytes
/// over the effective duration. `None` for degenerate flows.
pub fn throughput_bps(flow: &FlowRecord) -> Option<f64> {
    let bytes = transfer_size(flow);
    let dur = transfer_duration(flow)?;
    if bytes == 0 || dur.is_zero() {
        return None;
    }
    Some(bytes as f64 * 8.0 / dur.as_secs_f64())
}

/// Parameters of the θ bound.
#[derive(Clone, Copy, Debug)]
pub struct ThetaModel {
    /// Round-trip time to the storage servers.
    pub rtt: SimDuration,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments (\[4\] argues for larger; the
    /// paper computes θ with 3).
    pub initcwnd: u32,
    /// Handshake overhead in RTTs before data flows (TCP + the "3 RTTs of
    /// SSL handshakes in the current Dropbox setup").
    pub overhead_rtts: f64,
}

impl ThetaModel {
    /// The configuration the paper uses for Fig. 9, given the storage RTT
    /// of the vantage point.
    pub fn paper(rtt: SimDuration) -> Self {
        ThetaModel {
            rtt,
            mss: 1430,
            initcwnd: 3,
            overhead_rtts: 3.0,
        }
    }

    /// Slow-start rounds needed to deliver `bytes`.
    pub fn rounds(&self, bytes: u64) -> f64 {
        let w0 = (self.initcwnd as f64) * self.mss as f64;
        // Exponential growth: cumulative data after r rounds = w0·(2^r − 1).
        ((bytes as f64 / w0) + 1.0).log2().ceil().max(1.0)
    }

    /// Latency to complete a `bytes` transfer that never leaves slow start.
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let total_rtts = self.overhead_rtts + self.rounds(bytes);
        self.rtt.mul_f64(total_rtts)
    }

    /// The bound θ in bits/s for a transfer of `bytes`.
    pub fn theta_bps(&self, bytes: u64) -> f64 {
        let lat = self.latency(bytes).as_secs_f64();
        bytes as f64 * 8.0 / lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose};
    use nettrace::{Endpoint, FlowKey, Ipv4};
    use simcore::SimTime;

    fn flow(up_bytes: u64, down_bytes: u64, last_up_s: u64, last_down_s: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::EPOCH,
            last_packet: SimTime::from_secs(last_up_s.max(last_down_s)),
            up: DirStats {
                bytes: up_bytes,
                first_payload: Some(SimTime::from_millis(300)),
                last_payload: Some(SimTime::from_secs(last_up_s)),
                ..DirStats::default()
            },
            down: DirStats {
                bytes: down_bytes,
                first_payload: Some(SimTime::from_millis(400)),
                last_payload: Some(SimTime::from_secs(last_down_s)),
                ..DirStats::default()
            },
            min_rtt_ms: Some(90.0),
            rtt_samples: 10,
            tls_sni: Some("dl-client1.dropbox.com".into()),
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Rst,
            aborted: false,
        }
    }

    #[test]
    fn store_duration_ends_at_client_payload() {
        // A store flow whose server alert arrives at t=70 must not count
        // the idle minute.
        let f = flow(294 + 100_000, 4103 + 309 + 37, 10, 70);
        let d = transfer_duration(&f).unwrap();
        assert_eq!(d.secs(), 10);
    }

    #[test]
    fn retrieve_duration_compensates_idle_alert() {
        // Retrieve: last client payload at 8 s (request), last server
        // payload at 75 s (the 60 s-later alert) -> duration 75 − 60 = 15.
        let f = flow(294 + 2_000, 4103 + 500_000, 8, 75);
        let d = transfer_duration(&f).unwrap();
        assert_eq!(d.secs(), 15);
    }

    #[test]
    fn retrieve_duration_without_alert_is_plain() {
        let f = flow(294 + 2_000, 4103 + 500_000, 8, 12);
        assert_eq!(transfer_duration(&f).unwrap().secs(), 12);
    }

    #[test]
    fn throughput_uses_adjusted_bytes() {
        // Store of 100 kB over 10 s → 80 kbit/s on the adjusted bytes.
        let f = flow(294 + 100_000, 4103 + 309 + 37, 10, 70);
        let t = throughput_bps(&f).unwrap();
        assert!((t - 80_000.0).abs() < 1.0, "t = {t}");
    }

    #[test]
    fn theta_decreases_with_rtt() {
        let fast = ThetaModel::paper(SimDuration::from_millis(50));
        let slow = ThetaModel::paper(SimDuration::from_millis(150));
        let bytes = 50_000;
        assert!(fast.theta_bps(bytes) > 2.0 * slow.theta_bps(bytes));
    }

    #[test]
    fn theta_grows_with_transfer_size() {
        let m = ThetaModel::paper(SimDuration::from_millis(100));
        // Larger transfers amortise the handshake and ramp the window.
        assert!(m.theta_bps(1_000_000) > m.theta_bps(10_000));
        assert!(m.theta_bps(10_000) > m.theta_bps(1_000));
    }

    #[test]
    fn theta_round_counting() {
        let m = ThetaModel::paper(SimDuration::from_millis(100));
        // One window (3 × 1430 = 4290 bytes) fits in 1 round.
        assert_eq!(m.rounds(4_000), 1.0);
        // Two windows need 2 rounds (4290·(2²−1) = 12870 ≥ 10 kB).
        assert_eq!(m.rounds(10_000), 2.0);
        // Latency = (3 + rounds)·RTT.
        assert_eq!(m.latency(4_000).millis(), 400);
    }

    #[test]
    fn theta_bounds_simulated_single_chunk_flows() {
        // End-to-end consistency: simulate a single-chunk store on a clean
        // path and check the measured throughput never exceeds θ (the
        // bound of Fig. 9) but comes close for single chunks.
        use simcore::Rng;
        use tcpmodel::tls;
        use tcpmodel::{simulate, Dialogue, Direction, Message, PathParams, TcpParams};

        let chunk = 120_000u32;
        let mut messages = tls::handshake(
            "dl-client1.dropbox.com",
            "*.dropbox.com",
            SimDuration::from_millis(40),
        );
        messages.push(Message::simple(
            Direction::Up,
            SimDuration::from_millis(20),
            634 + chunk,
        ));
        messages.push(Message::simple(
            Direction::Down,
            SimDuration::from_millis(60),
            309,
        ));
        let d = Dialogue::new(messages);
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(4),
            outer_rtt: SimDuration::from_millis(96),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let mut pkts = Vec::new();
        simulate(
            SimTime::from_secs(1),
            FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            &d,
            &path,
            &TcpParams::era_2012_v1(),
            &mut Rng::new(1),
            &mut pkts,
        );
        let mut mon = tstat::Monitor::new(true);
        let rec = mon.process_flow(&pkts).unwrap();
        let measured = throughput_bps(&rec).unwrap();
        let theta = ThetaModel::paper(SimDuration::from_millis(100)).theta_bps(chunk as u64);
        assert!(
            measured < theta,
            "measured {measured:.0} must stay below theta {theta:.0}"
        );
        assert!(
            measured > 0.4 * theta,
            "single-chunk flow should approach the bound: {measured:.0} vs {theta:.0}"
        );
    }
}

//! Flow classification from wire-visible names and byte counts.
//!
//! Three classifiers, layered exactly as in the paper:
//!
//! 1. **Provider attribution** (Sec. 3.3): which cloud/storage service a
//!    flow belongs to, from the TLS server name and/or DNS FQDN.
//! 2. **Dropbox server roles** (Table 1 / Fig. 4): which part of the
//!    Dropbox architecture the server implements.
//! 3. **Storage-flow tagging** (Appendix A.2): classifying `dl-clientX`
//!    flows as *store* or *retrieve* by the byte counts of the two
//!    directions, using the empirical separator
//!    `f(u) = 0.67·(u − 294) + 4103`.

use nettrace::FlowRecord;

/// SSL handshake bytes contributed by clients (Appendix A.2).
pub const SSL_CLIENT_OVERHEAD: u64 = 294;
/// SSL handshake bytes contributed by servers (Appendix A.2).
pub const SSL_SERVER_OVERHEAD: u64 = 4103;

/// Cloud-storage (and reference) services compared in Sec. 3.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Provider {
    /// Dropbox (all `*.dropbox.com` services).
    Dropbox,
    /// Apple iCloud.
    ICloud,
    /// Microsoft SkyDrive.
    SkyDrive,
    /// Google Drive (launched on 2012-04-24, mid-capture).
    GoogleDrive,
    /// Aggregated smaller providers (SugarSync, Box.com, UbuntuOne, …).
    OtherCloud,
    /// YouTube — the traffic-volume yardstick of Fig. 3.
    YouTube,
    /// Everything else.
    Unknown,
}

impl Provider {
    /// All cloud-storage providers (excluding YouTube/Unknown).
    pub const CLOUD: [Provider; 5] = [
        Provider::Dropbox,
        Provider::ICloud,
        Provider::SkyDrive,
        Provider::GoogleDrive,
        Provider::OtherCloud,
    ];

    /// Display label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Provider::Dropbox => "Dropbox",
            Provider::ICloud => "iCloud",
            Provider::SkyDrive => "SkyDrive",
            Provider::GoogleDrive => "Google Drive",
            Provider::OtherCloud => "Others",
            Provider::YouTube => "YouTube",
            Provider::Unknown => "Unknown",
        }
    }
}

/// Attribute a server name to a provider (suffix matching on the names the
/// services used in 2012).
pub fn provider_of_name(name: &str) -> Provider {
    let has = |s: &str| name == s || name.ends_with(&format!(".{s}"));
    if has("dropbox.com") {
        Provider::Dropbox
    } else if has("icloud.com") || has("me.com") {
        Provider::ICloud
    } else if has("livefilestore.com") || has("skydrive.live.com") || has("storage.live.com") {
        Provider::SkyDrive
    } else if has("drive.google.com") || has("docs.google.com") || has("clients6.google.com") {
        Provider::GoogleDrive
    } else if has("sugarsync.com") || has("box.com") || has("one.ubuntu.com") {
        Provider::OtherCloud
    } else if has("youtube.com") || has("googlevideo.com") || has("ytimg.com") {
        Provider::YouTube
    } else {
        Provider::Unknown
    }
}

/// Attribute a flow to a provider using the best available name
/// (FQDN → SNI → certificate CN → HTTP host), as Sec. 3.1 describes.
pub fn provider_of(flow: &FlowRecord) -> Provider {
    match flow.server_name() {
        Some(name) => {
            // The certificate CN `*.dropbox.com` also matches the suffix
            // rule once the wildcard label is dropped.
            let name = name.strip_prefix("*.").unwrap_or(name);
            provider_of_name(name)
        }
        None => Provider::Unknown,
    }
}

/// Dropbox server-role groups as presented in Fig. 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DropboxRole {
    /// `dl-clientX` — client storage.
    ClientStorage,
    /// `dl` and `dl-web` — web storage (direct links + web interface).
    WebStorage,
    /// `api-content` — API storage.
    ApiStorage,
    /// `client-lb`/`clientX` — client control (meta-data).
    ClientControl,
    /// `notifyX` — notification control.
    NotifyControl,
    /// `www` — web control.
    WebControl,
    /// `d` and `dl-debugX` — system logs.
    SystemLog,
    /// `api` and anything unrecognised under `dropbox.com`.
    Others,
}

impl DropboxRole {
    /// All roles in Fig. 4's legend order.
    pub const ALL: [DropboxRole; 8] = [
        DropboxRole::ClientStorage,
        DropboxRole::WebStorage,
        DropboxRole::ApiStorage,
        DropboxRole::ClientControl,
        DropboxRole::NotifyControl,
        DropboxRole::WebControl,
        DropboxRole::SystemLog,
        DropboxRole::Others,
    ];

    /// Display label as in Fig. 4.
    pub fn label(self) -> &'static str {
        match self {
            DropboxRole::ClientStorage => "Client (storage)",
            DropboxRole::WebStorage => "Web (storage)",
            DropboxRole::ApiStorage => "API (storage)",
            DropboxRole::ClientControl => "Client (control)",
            DropboxRole::NotifyControl => "Notify (control)",
            DropboxRole::WebControl => "Web (control)",
            DropboxRole::SystemLog => "System log (all)",
            DropboxRole::Others => "Others",
        }
    }
}

/// Role of a Dropbox flow, or `None` when the flow is not Dropbox.
pub fn dropbox_role(flow: &FlowRecord) -> Option<DropboxRole> {
    if provider_of(flow) != Provider::Dropbox {
        return None;
    }
    let name = flow.server_name()?;
    let host = name.strip_suffix(".dropbox.com").unwrap_or(name);
    Some(if host.starts_with("dl-client") {
        DropboxRole::ClientStorage
    } else if host == "dl" || host == "dl-web" {
        DropboxRole::WebStorage
    } else if host == "api-content" {
        DropboxRole::ApiStorage
    } else if host == "client-lb" || (host.starts_with("client") && !host.contains('-')) {
        DropboxRole::ClientControl
    } else if host.starts_with("notify") {
        DropboxRole::NotifyControl
    } else if host == "www" {
        DropboxRole::WebControl
    } else if host == "d" || host.starts_with("dl-debug") {
        DropboxRole::SystemLog
    } else {
        DropboxRole::Others
    })
}

/// Store/retrieve tag of a client-storage flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageTag {
    /// The flow uploaded chunks.
    Store,
    /// The flow downloaded chunks.
    Retrieve,
}

/// The empirical separator of Appendix A.2: a storage flow with `u`
/// uploaded bytes is a *store* when its download stays below `f(u)`.
///
/// ```
/// use dropbox_analysis::classify::f_u;
/// // A 1 MB upload answered only by handshake + OKs sits far below f(u).
/// assert!(4103.0 + 10.0 * 309.0 < f_u(1_000_000));
/// ```
pub fn f_u(uploaded: u64) -> f64 {
    0.67 * (uploaded as f64 - 294.0) + 4103.0
}

/// Tag a client-storage flow as store or retrieve from its byte counts.
pub fn storage_tag(flow: &FlowRecord) -> StorageTag {
    if (flow.down.bytes as f64) < f_u(flow.up.bytes) {
        StorageTag::Store
    } else {
        StorageTag::Retrieve
    }
}

/// Payload bytes of a storage flow with the typical SSL overheads
/// subtracted, per direction — the quantity plotted in Figs. 9, 11 and 20.
pub fn ssl_adjusted(flow: &FlowRecord) -> (u64, u64) {
    (
        flow.up.bytes.saturating_sub(SSL_CLIENT_OVERHEAD),
        flow.down.bytes.saturating_sub(SSL_SERVER_OVERHEAD),
    )
}

/// The transferred size of a tagged storage flow (SSL-adjusted bytes in
/// the transfer direction).
pub fn transfer_size(flow: &FlowRecord) -> u64 {
    let (up, down) = ssl_adjusted(flow);
    match storage_tag(flow) {
        StorageTag::Store => up,
        StorageTag::Retrieve => down,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose};
    use nettrace::{Endpoint, FlowKey, Ipv4};
    use simcore::SimTime;

    fn flow(name: &str, up: u64, down: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
                Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
            ),
            first_syn: SimTime::EPOCH,
            last_packet: SimTime::from_secs(10),
            up: DirStats {
                bytes: up,
                ..DirStats::default()
            },
            down: DirStats {
                bytes: down,
                ..DirStats::default()
            },
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: Some(name.to_owned()),
            tls_certificate_cn: None,
            http_host: None,
            server_fqdn: None,
            notify: None,
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn provider_suffixes() {
        assert_eq!(
            provider_of_name("dl-client3.dropbox.com"),
            Provider::Dropbox
        );
        assert_eq!(provider_of_name("p04-content.icloud.com"), Provider::ICloud);
        assert_eq!(
            provider_of_name("duc281.livefilestore.com"),
            Provider::SkyDrive
        );
        assert_eq!(provider_of_name("drive.google.com"), Provider::GoogleDrive);
        assert_eq!(provider_of_name("api.sugarsync.com"), Provider::OtherCloud);
        assert_eq!(provider_of_name("r3.youtube.com"), Provider::YouTube);
        assert_eq!(provider_of_name("example.org"), Provider::Unknown);
        // No substring tricks: "dropbox.com.evil.org" must not match.
        assert_eq!(provider_of_name("dropbox.com.evil.org"), Provider::Unknown);
    }

    #[test]
    fn wildcard_certificate_matches_dropbox() {
        let mut f = flow("x", 100, 100);
        f.tls_sni = None;
        f.tls_certificate_cn = Some("*.dropbox.com".into());
        assert_eq!(provider_of(&f), Provider::Dropbox);
    }

    #[test]
    fn roles_follow_figure_4_grouping() {
        let cases = [
            ("dl-client99.dropbox.com", DropboxRole::ClientStorage),
            ("dl.dropbox.com", DropboxRole::WebStorage),
            ("dl-web.dropbox.com", DropboxRole::WebStorage),
            ("api-content.dropbox.com", DropboxRole::ApiStorage),
            ("client-lb.dropbox.com", DropboxRole::ClientControl),
            ("client4.dropbox.com", DropboxRole::ClientControl),
            ("notify12.dropbox.com", DropboxRole::NotifyControl),
            ("www.dropbox.com", DropboxRole::WebControl),
            ("d.dropbox.com", DropboxRole::SystemLog),
            ("dl-debug2.dropbox.com", DropboxRole::SystemLog),
            ("api.dropbox.com", DropboxRole::Others),
        ];
        for (name, role) in cases {
            assert_eq!(dropbox_role(&flow(name, 1, 1)), Some(role), "{name}");
        }
        assert_eq!(dropbox_role(&flow("youtube.com", 1, 1)), None);
    }

    #[test]
    fn f_u_separates_store_and_retrieve() {
        // A store flow: 10 chunks of 20 kB up, only handshake + OKs down.
        let store = flow(
            "dl-client1.dropbox.com",
            294 + 10 * (634 + 20_000),
            4103 + 10 * 309 + 37,
        );
        assert_eq!(storage_tag(&store), StorageTag::Store);
        // A retrieve flow: requests up, chunks down.
        let retr = flow(
            "dl-client1.dropbox.com",
            294 + 10 * 400,
            4103 + 10 * (309 + 20_000),
        );
        assert_eq!(storage_tag(&retr), StorageTag::Retrieve);
    }

    #[test]
    fn f_u_handles_handshake_only_flows() {
        // A flow that exchanged only the SSL handshake: down (4103) ==
        // f(294) exactly; the tagger must not call it a store of data.
        let hs = flow("dl-client1.dropbox.com", 294, 4103);
        assert_eq!(storage_tag(&hs), StorageTag::Retrieve);
        assert_eq!(transfer_size(&hs), 0);
    }

    #[test]
    fn single_small_chunk_store_is_still_store() {
        // 1 chunk of 1 kB: u = 294+634+1000, d = 4103+309+37.
        let f1 = flow("dl-client1.dropbox.com", 1928, 4449);
        assert_eq!(storage_tag(&f1), StorageTag::Store);
    }

    #[test]
    fn ssl_adjustment_subtracts_overheads() {
        let f1 = flow("dl-client1.dropbox.com", 10_294, 8_103);
        assert_eq!(ssl_adjusted(&f1), (10_000, 4_000));
        let tiny = flow("dl-client1.dropbox.com", 100, 100);
        assert_eq!(ssl_adjusted(&tiny), (0, 0));
    }
}

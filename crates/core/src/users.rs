//! User inference from notification payloads (Sec. 2.3.1).
//!
//! "Different devices belonging to a single user can be inferred as well,
//! by comparing namespace lists." Devices of one account always share the
//! account's root namespace, so two devices behind the same address whose
//! advertised namespace lists intersect belong, with high confidence, to
//! the same user. This module implements that inference as a union-find
//! over the monitor's notification metadata, and the experiment harness
//! scores it against generator ground truth.

use crate::classify::{dropbox_role, DropboxRole};
use crate::stream::{run_one, Accumulate};
use nettrace::{FlowRecord, Ipv4};
use std::collections::{BTreeMap, BTreeSet};
use std::mem::size_of;

/// Union-find over device ids.
struct Dsu {
    parent: BTreeMap<u64, u64>,
}

impl Dsu {
    fn new() -> Self {
        Dsu {
            parent: BTreeMap::new(),
        }
    }

    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: u64, b: u64) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Streaming account inference: keeps the last observed namespace set
/// per (address, device) — state bounded by the device population — and
/// runs the union-find at `finish`.
#[derive(Default)]
pub struct InferUsersAcc {
    per_addr: BTreeMap<Ipv4, BTreeMap<u64, BTreeSet<u64>>>,
}

impl Accumulate for InferUsersAcc {
    type Output = Vec<Vec<u64>>;

    fn observe(&mut self, f: &FlowRecord) {
        if dropbox_role(f) != Some(DropboxRole::NotifyControl) {
            return;
        }
        if let Some(meta) = &f.notify {
            self.per_addr
                .entry(f.key.client.ip)
                .or_default()
                .insert(meta.host_int, meta.namespaces.iter().copied().collect());
        }
    }

    fn finish(self) -> Vec<Vec<u64>> {
        let mut dsu = Dsu::new();
        for devices in self.per_addr.values() {
            let list: Vec<(&u64, &BTreeSet<u64>)> = devices.iter().collect();
            for (i, (&a, nss_a)) in list.iter().enumerate() {
                dsu.find(a); // make sure singletons appear
                for (&b, nss_b) in list.iter().skip(i + 1) {
                    if nss_a.intersection(nss_b).next().is_some() {
                        dsu.union(a, b);
                    }
                }
            }
        }

        let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let devices: Vec<u64> = dsu.parent.keys().copied().collect();
        for d in devices {
            let root = dsu.find(d);
            groups.entry(root).or_default().push(d);
        }
        let mut out: Vec<Vec<u64>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort();
        out
    }

    fn state_bytes(&self) -> usize {
        size_of::<Self>()
            + self
                .per_addr
                .values()
                .map(|devices| {
                    size_of::<(Ipv4, BTreeMap<u64, BTreeSet<u64>>)>()
                        + devices
                            .values()
                            .map(|nss| {
                                size_of::<(u64, BTreeSet<u64>)>() + nss.len() * size_of::<u64>()
                            })
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Infer user accounts: groups of device ids believed to belong to the
/// same user. Devices are joined when they appear behind the same client
/// address and their namespace lists share at least one namespace.
pub fn infer_users(flows: &[FlowRecord]) -> Vec<Vec<u64>> {
    run_one(flows, InferUsersAcc::default())
}

/// Score inferred user groups against ground truth: returns
/// `(pairwise_precision, pairwise_recall)` over same-user device pairs.
pub fn score_users(inferred: &[Vec<u64>], truth: &[Vec<u64>]) -> (f64, f64) {
    let pairs = |groups: &[Vec<u64>]| -> BTreeSet<(u64, u64)> {
        let mut set = BTreeSet::new();
        for g in groups {
            for i in 0..g.len() {
                for j in i + 1..g.len() {
                    set.insert((g[i].min(g[j]), g[i].max(g[j])));
                }
            }
        }
        set
    };
    let inf = pairs(inferred);
    let tru = pairs(truth);
    if inf.is_empty() && tru.is_empty() {
        return (1.0, 1.0);
    }
    let hit = inf.intersection(&tru).count() as f64;
    let precision = if inf.is_empty() {
        1.0
    } else {
        hit / inf.len() as f64
    };
    let recall = if tru.is_empty() {
        1.0
    } else {
        hit / tru.len() as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::flow::{DirStats, FlowClose, NotifyMeta};
    use nettrace::{Endpoint, FlowKey};
    use simcore::SimTime;

    fn notify(ip: Ipv4, host_int: u64, namespaces: Vec<u64>) -> FlowRecord {
        FlowRecord {
            key: FlowKey::new(
                Endpoint::new(ip, 40_000 + host_int as u16),
                Endpoint::new(Ipv4::new(199, 47, 216, 33), 80),
            ),
            first_syn: SimTime::from_secs(host_int),
            last_packet: SimTime::from_secs(host_int + 100),
            up: DirStats::default(),
            down: DirStats::default(),
            min_rtt_ms: None,
            rtt_samples: 0,
            tls_sni: None,
            tls_certificate_cn: None,
            http_host: Some("notify1.dropbox.com".into()),
            server_fqdn: Some("notify1.dropbox.com".into()),
            notify: Some(NotifyMeta {
                host_int,
                namespaces,
            }),
            close: FlowClose::Fin,
            aborted: false,
        }
    }

    #[test]
    fn shared_root_joins_devices() {
        let ip = Ipv4::new(10, 0, 0, 1);
        let flows = vec![
            notify(ip, 1, vec![100, 5]),
            notify(ip, 2, vec![100, 7]),
            notify(ip, 3, vec![200]), // a flatmate's account
        ];
        let groups = infer_users(&flows);
        assert_eq!(groups, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn no_join_across_addresses() {
        let flows = vec![
            notify(Ipv4::new(10, 0, 0, 1), 1, vec![100]),
            notify(Ipv4::new(10, 0, 0, 2), 2, vec![100]),
        ];
        // Same namespace (a shared folder) but different households: the
        // conservative heuristic keeps them separate.
        let groups = infer_users(&flows);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn transitive_joining() {
        let ip = Ipv4::new(10, 0, 0, 1);
        let flows = vec![
            notify(ip, 1, vec![100]),
            notify(ip, 2, vec![100, 101]),
            notify(ip, 3, vec![101]),
        ];
        let groups = infer_users(&flows);
        assert_eq!(groups, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn scoring_perfect_and_partial() {
        let truth = vec![vec![1, 2, 3], vec![4]];
        assert_eq!(score_users(&truth, &truth), (1.0, 1.0));
        // Missing one device from the group: recall drops, precision holds.
        let inferred = vec![vec![1, 2], vec![3], vec![4]];
        let (p, r) = score_users(&inferred, &truth);
        assert_eq!(p, 1.0);
        assert!((r - 1.0 / 3.0).abs() < 1e-9);
        // Over-merging: precision drops.
        let inferred = vec![vec![1, 2, 3, 4]];
        let (p, r) = score_users(&inferred, &truth);
        assert!(p < 1.0 && r == 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(infer_users(&[]).is_empty());
        assert_eq!(score_users(&[], &[]), (1.0, 1.0));
    }
}

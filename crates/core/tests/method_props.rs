//! Property tests of the analysis methods on synthetically constructed
//! flow records (no simulator involved: the methods must hold on any
//! record satisfying the protocol's wire constraints).

use dropbox_analysis::chunks::{estimate_chunks, reverse_payload_per_chunk};
use dropbox_analysis::classify::{f_u, storage_tag, StorageTag};
use dropbox_analysis::groups::{group_of, HouseholdUsage, UserGroup};
use nettrace::flow::{DirStats, FlowClose};
use nettrace::{Endpoint, FlowKey, FlowRecord, Ipv4};
use simcore::proptest::any_bool;
use simcore::SimTime;
use simcore::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

fn storage_record(
    up_bytes: u64,
    down_bytes: u64,
    up_psh: u64,
    down_psh: u64,
    last_up_s: u64,
    last_down_s: u64,
) -> FlowRecord {
    FlowRecord {
        key: FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
            Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
        ),
        first_syn: SimTime::EPOCH,
        last_packet: SimTime::from_secs(last_up_s.max(last_down_s)),
        up: DirStats {
            bytes: up_bytes,
            psh_segments: up_psh,
            first_payload: Some(SimTime::from_secs(1)),
            last_payload: Some(SimTime::from_secs(last_up_s)),
            ..DirStats::default()
        },
        down: DirStats {
            bytes: down_bytes,
            psh_segments: down_psh,
            first_payload: Some(SimTime::from_secs(1)),
            last_payload: Some(SimTime::from_secs(last_down_s)),
            ..DirStats::default()
        },
        min_rtt_ms: Some(90.0),
        rtt_samples: 10,
        tls_sni: Some("dl-client1.dropbox.com".into()),
        tls_certificate_cn: Some("*.dropbox.com".into()),
        http_host: None,
        server_fqdn: None,
        notify: None,
        close: FlowClose::Rst,
        aborted: false,
    }
}

proptest! {
    #![cases(256)]

    /// Chunk estimation inverts the protocol's PSH construction exactly,
    /// for every chunk count, chunk size, and close mode.
    #[test]
    fn chunk_estimator_inverts_wire_construction(
        chunks in 1u64..=100,
        chunk_bytes in 1u64..4_000_000,
        server_closed in any_bool(),
    ) {
        // Store flow per Appendix A: client PSH = 2 + c, server PSH =
        // 2 + c (+1 alert when the server closes after 60 s idle).
        let last_up = 10u64;
        let (down_psh, last_down) = if server_closed {
            (2 + chunks + 1, last_up + 61)
        } else {
            (2 + chunks, last_up + 1)
        };
        let up = 294 + chunks * (634 + chunk_bytes);
        let down = 4103 + chunks * 309 + if server_closed { 37 } else { 0 };
        let f = storage_record(up, down, 2 + chunks, down_psh, last_up, last_down);
        prop_assert_eq!(storage_tag(&f), StorageTag::Store);
        prop_assert_eq!(estimate_chunks(&f) as u64, chunks);

        // Retrieve flow: client PSH = 2 + 2c.
        let up = 294 + chunks * 394;
        let down = 4103 + chunks * (309 + chunk_bytes);
        let f = storage_record(up, down, 2 + 2 * chunks, 2 + chunks, 10, 12);
        prop_assert_eq!(storage_tag(&f), StorageTag::Retrieve);
        prop_assert_eq!(estimate_chunks(&f) as u64, chunks);
        // And the Fig. 21 validation quantity stays in the documented band.
        let v = reverse_payload_per_chunk(&f).unwrap();
        prop_assert!((360.0..=430.0).contains(&v), "v = {}", v);
    }

    /// The f(u) separator margin grows with chunk count: the classifier
    /// only gets more confident on bigger flows.
    #[test]
    fn f_u_margin_monotone_in_chunks(chunk_bytes in 1u64..4_000_000) {
        let mut prev_margin = f64::NEG_INFINITY;
        for c in [1u64, 10, 100] {
            let up = 294 + c * (634 + chunk_bytes);
            let down = (4103 + c * 309 + 37) as f64;
            let margin = f_u(up) - down;
            prop_assert!(margin > 0.0);
            prop_assert!(margin >= prev_margin);
            prev_margin = margin;
        }
    }

    /// Group classification is scale-consistent: multiplying both volumes
    /// by the same factor never changes the group (above the occasional
    /// threshold).
    #[test]
    fn group_scale_invariance(
        store in 10_001u64..1_000_000,
        retr in 10_001u64..1_000_000,
        scale in 1u64..1_000,
    ) {
        let g1 = group_of(&HouseholdUsage {
            store_bytes: store,
            retrieve_bytes: retr,
            ..HouseholdUsage::default()
        });
        let g2 = group_of(&HouseholdUsage {
            store_bytes: store * scale,
            retrieve_bytes: retr * scale,
            ..HouseholdUsage::default()
        });
        prop_assert_eq!(g1, g2);
        prop_assert_ne!(g1, UserGroup::Occasional, "both sides above 10 kB");
    }

    /// Exactly one group matches any volume pair (classification is total
    /// and unambiguous by construction).
    #[test]
    fn group_classification_total(store in 0u64..10_000_000_000, retr in 0u64..10_000_000_000) {
        let g = group_of(&HouseholdUsage {
            store_bytes: store,
            retrieve_bytes: retr,
            ..HouseholdUsage::default()
        });
        // Re-deriving the conditions reproduces the same group.
        let expected = if store < 10_000 && retr < 10_000 {
            UserGroup::Occasional
        } else if store.max(1) as f64 / retr.max(1) as f64 >= 1_000.0 {
            UserGroup::UploadOnly
        } else if retr.max(1) as f64 / store.max(1) as f64 >= 1_000.0 {
            UserGroup::DownloadOnly
        } else {
            UserGroup::Heavy
        };
        prop_assert_eq!(g, expected);
    }
}

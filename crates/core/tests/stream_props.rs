//! Property tests of the streaming pipeline: one shared fan-out pass over
//! a randomized flow set must produce exactly what the legacy
//! materialised entry points compute in independent passes, and a second
//! pipeline pass over the same stream must be identical to the first
//! (the determinism half of the byte-identity contract — see
//! `dropbox_analysis::stream`).

use dropbox_analysis::dataset::{
    DailyTotalAcc, Dataset, DropboxTotalsAcc, OverviewAcc, ProviderSeriesAcc, RoleBreakdownAcc,
    StorageServersAcc,
};
use dropbox_analysis::groups::{aggregate_households, HouseholdsAcc};
use dropbox_analysis::sessions::{
    distinct_devices, merged_sessions, namespaces_per_device, raw_session_durations,
    startups_per_day, DeviceSession, DistinctDevicesAcc, MergedSessionsAcc, NamespacesPerDeviceAcc,
    RawDurationsAcc, StartupsAcc,
};
use dropbox_analysis::stream::Pipeline;
use dropbox_analysis::users::{infer_users, InferUsersAcc};
use dropbox_analysis::Accumulate;
use nettrace::flow::{DirStats, FlowClose, NotifyMeta};
use nettrace::{Endpoint, FlowKey, FlowRecord, Ipv4};
use simcore::proptest::{any_u64, vec_of};
use simcore::{prop_assert_eq, proptest, SimDuration, SimTime};

const DAYS: u32 = 3;

/// Expand one random seed into a flow record, covering every traffic
/// kind the accumulators dispatch on: store/retrieve storage flows with
/// Appendix-A wire construction, notification flows carrying device
/// metadata, control and web flows, and non-Dropbox background traffic.
fn record_from_seed(s: u64) -> FlowRecord {
    let client = Ipv4::new(10, 0, 0, 1 + ((s >> 3) % 5) as u8);
    let day = ((s >> 6) % DAYS as u64) as u32;
    let start = SimTime::from_day_offset(day, SimDuration::from_secs(30_000 + (s >> 9) % 40_000));
    let mut f = FlowRecord {
        key: FlowKey::new(
            Endpoint::new(client, 40_000 + (s % 1_000) as u16),
            Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
        ),
        first_syn: start,
        last_packet: start.checked_add(SimDuration::from_secs(10)).unwrap(),
        up: DirStats::default(),
        down: DirStats::default(),
        min_rtt_ms: Some(20.0 + (s >> 11) as f64 % 180.0),
        rtt_samples: 4,
        tls_sni: None,
        tls_certificate_cn: None,
        http_host: None,
        server_fqdn: None,
        notify: None,
        close: FlowClose::Fin,
        aborted: false,
    };
    let chunks = 1 + (s >> 12) % 20;
    let chunk_bytes = 1 + (s >> 17) % 500_000;
    match s % 6 {
        0 => {
            // Store flow per Appendix A.2.
            f.tls_sni = Some("dl-client1.dropbox.com".into());
            f.up = DirStats {
                bytes: 294 + chunks * (634 + chunk_bytes),
                psh_segments: 2 + chunks,
                first_payload: Some(f.first_syn),
                last_payload: Some(f.last_packet),
                ..DirStats::default()
            };
            f.down = DirStats {
                bytes: 4103 + chunks * 309 + 37,
                psh_segments: 2 + chunks + 1,
                first_payload: Some(f.first_syn),
                last_payload: Some(f.last_packet),
                ..DirStats::default()
            };
        }
        1 => {
            // Retrieve flow.
            f.tls_sni = Some("dl-client2.dropbox.com".into());
            f.up = DirStats {
                bytes: 294 + chunks * 394,
                psh_segments: 2 + 2 * chunks,
                first_payload: Some(f.first_syn),
                last_payload: Some(f.last_packet),
                ..DirStats::default()
            };
            f.down = DirStats {
                bytes: 4103 + chunks * (309 + chunk_bytes),
                psh_segments: 2 + chunks,
                first_payload: Some(f.first_syn),
                last_payload: Some(f.last_packet),
                ..DirStats::default()
            };
        }
        2 => {
            // Notification flow: device metadata drives sessions, device
            // counts, namespace maps and user inference.
            f.key = FlowKey::new(
                Endpoint::new(client, 40_000 + (s % 1_000) as u16),
                Endpoint::new(Ipv4::new(199, 47, 216, 33), 80),
            );
            f.last_packet = start
                .checked_add(SimDuration::from_secs(30 + (s >> 21) % 5_000))
                .unwrap();
            f.server_fqdn = Some("notify1.dropbox.com".into());
            f.up.bytes = 400;
            f.down.bytes = 600;
            let mut namespaces = vec![100 + (s >> 15) % 6];
            if s & 1 << 22 != 0 {
                namespaces.push(100 + (s >> 24) % 6);
            }
            f.notify = Some(NotifyMeta {
                host_int: 1 + (s >> 12) % 8,
                namespaces,
            });
        }
        3 => {
            // Client control (meta-data).
            f.tls_sni = Some("client4.dropbox.com".into());
            f.up.bytes = 2_000 + (s >> 14) % 8_000;
            f.down.bytes = 3_000 + (s >> 18) % 8_000;
        }
        4 => {
            // Web control.
            f.tls_sni = Some("www.dropbox.com".into());
            f.up.bytes = 1_000;
            f.down.bytes = 20_000 + (s >> 14) % 100_000;
        }
        _ => {
            // Non-Dropbox background traffic.
            f.key = FlowKey::new(
                Endpoint::new(client, 40_000 + (s % 1_000) as u16),
                Endpoint::new(Ipv4::new(74, 125, 0, 1), 443),
            );
            f.tls_sni = Some("r3.youtube.com".into());
            f.up.bytes = 5_000;
            f.down.bytes = 100_000 + (s >> 14) % 2_000_000;
        }
    }
    f
}

/// A comparable projection of a merged session (`DeviceSession` carries
/// no `PartialEq` of its own).
fn session_key(s: &DeviceSession) -> (u64, Ipv4, SimTime, SimTime, Vec<u64>) {
    (
        s.host_int,
        s.household,
        s.start,
        s.end,
        s.namespaces.clone(),
    )
}

/// Run every accumulator under test through one shared pipeline pass and
/// render the finished results (plus the live-state total) into a
/// deterministic string.
fn shared_pass_digest(flows: &[FlowRecord]) -> String {
    let mut overview = OverviewAcc::default();
    let mut totals = DropboxTotalsAcc::default();
    let mut roles = RoleBreakdownAcc::default();
    let mut servers = StorageServersAcc::new(DAYS);
    let mut providers = ProviderSeriesAcc::new(DAYS);
    let mut daily = DailyTotalAcc::new(DAYS);
    let mut raw = RawDurationsAcc::default();
    let mut merged = MergedSessionsAcc::default();
    let mut devices = DistinctDevicesAcc::default();
    let mut namespaces = NamespacesPerDeviceAcc::default();
    let mut startups = StartupsAcc::new(DAYS);
    let mut users = InferUsersAcc::default();
    let mut households = HouseholdsAcc::default();
    let state_bytes;
    {
        let mut p = Pipeline::new();
        p.register(&mut overview)
            .register(&mut totals)
            .register(&mut roles)
            .register(&mut servers)
            .register(&mut providers)
            .register(&mut daily)
            .register(&mut raw)
            .register(&mut merged)
            .register(&mut devices)
            .register(&mut namespaces)
            .register(&mut startups)
            .register(&mut users)
            .register(&mut households);
        p.run(flows);
        state_bytes = p.state_bytes();
    }
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{state_bytes}",
        overview.finish(),
        totals.finish(),
        roles.finish(),
        servers.finish(),
        providers.finish(),
        daily.finish(),
        raw.finish(),
        merged.finish().iter().map(session_key).collect::<Vec<_>>(),
        devices.finish(),
        namespaces.finish(),
        startups.finish(),
        users.finish(),
        households.finish(),
    )
}

proptest! {
    #![cases(48)]

    /// One shared fan-out pass computes exactly what the legacy
    /// materialised entry points compute in independent whole-vector
    /// passes, for any mix of traffic kinds.
    #[test]
    fn shared_pipeline_matches_independent_legacy_passes(
        seeds in vec_of(any_u64(), 0..60),
    ) {
        let flows: Vec<FlowRecord> = seeds.iter().map(|&s| record_from_seed(s)).collect();
        let mut ds = Dataset::new("Prop", true, DAYS);
        ds.flows = flows.clone();

        let mut overview = OverviewAcc::default();
        let mut totals = DropboxTotalsAcc::default();
        let mut roles = RoleBreakdownAcc::default();
        let mut servers = StorageServersAcc::new(DAYS);
        let mut providers = ProviderSeriesAcc::new(DAYS);
        let mut daily = DailyTotalAcc::new(DAYS);
        let mut raw = RawDurationsAcc::default();
        let mut merged = MergedSessionsAcc::default();
        let mut devices = DistinctDevicesAcc::default();
        let mut namespaces = NamespacesPerDeviceAcc::default();
        let mut startups = StartupsAcc::new(DAYS);
        let mut users = InferUsersAcc::default();
        let mut households = HouseholdsAcc::default();
        let records;
        {
            let mut p = Pipeline::new();
            p.register(&mut overview)
                .register(&mut totals)
                .register(&mut roles)
                .register(&mut servers)
                .register(&mut providers)
                .register(&mut daily)
                .register(&mut raw)
                .register(&mut merged)
                .register(&mut devices)
                .register(&mut namespaces)
                .register(&mut startups)
                .register(&mut users)
                .register(&mut households);
            ds.stream_into(&mut p);
            records = p.records();
        }
        prop_assert_eq!(records, flows.len() as u64);

        prop_assert_eq!(overview.finish(), ds.overview());
        prop_assert_eq!(totals.finish(), ds.dropbox_totals());
        prop_assert_eq!(roles.finish(), ds.role_breakdown());
        prop_assert_eq!(servers.finish(), ds.storage_servers_per_day());
        prop_assert_eq!(providers.finish(), ds.provider_series());
        prop_assert_eq!(daily.finish(), ds.daily_total_bytes());
        prop_assert_eq!(raw.finish(), raw_session_durations(&flows));
        prop_assert_eq!(
            merged.finish().iter().map(session_key).collect::<Vec<_>>(),
            merged_sessions(&flows).iter().map(session_key).collect::<Vec<_>>()
        );
        prop_assert_eq!(devices.finish(), distinct_devices(&flows));
        prop_assert_eq!(namespaces.finish(), namespaces_per_device(&flows));
        prop_assert_eq!(startups.finish(), startups_per_day(&flows, DAYS));
        prop_assert_eq!(users.finish(), infer_users(&flows));
        prop_assert_eq!(households.finish(), aggregate_households(&flows));
    }

    /// Two pipeline passes over the same stream are identical — results
    /// and reported live state both (no hidden run-to-run state).
    #[test]
    fn pipeline_double_run_is_deterministic(seeds in vec_of(any_u64(), 0..60)) {
        let flows: Vec<FlowRecord> = seeds.iter().map(|&s| record_from_seed(s)).collect();
        prop_assert_eq!(shared_pass_digest(&flows), shared_pass_digest(&flows));
    }
}

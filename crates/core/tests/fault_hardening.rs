//! The analysis methods must survive what fault injection does to the
//! wire: flows truncated by a mid-transfer RST, flows inflated by
//! retransmissions, and degenerate records with no payload at all. None
//! of these may panic, and the byte-based methods must keep reporting
//! *goodput* (unique payload), not wire volume.

use dropbox_analysis::chunks::{estimate_chunks, reverse_payload_per_chunk};
use dropbox_analysis::classify::{
    dropbox_role, provider_of, storage_tag, transfer_size, DropboxRole, Provider, StorageTag,
};
use dropbox_analysis::sessions::{
    devices_per_household, distinct_devices, hourly_profiles, merged_sessions,
    namespaces_per_device, raw_session_durations, startups_per_day,
};
use dropbox_analysis::throughput::{throughput_bps, transfer_duration};
use nettrace::flow::{DirStats, FlowClose, NotifyMeta};
use nettrace::{Endpoint, FlowKey, FlowRecord, Ipv4};
use simcore::faults::FlowFaults;
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::{simulate_faulty, tls, Dialogue, Direction, Message, PathParams, TcpParams};

fn key() -> FlowKey {
    FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
    )
}

/// Render a single-chunk store through the fault-aware TCP model and the
/// monitor, with the given fault profile.
fn faulty_store_record(chunk: u32, faults: FlowFaults) -> Option<FlowRecord> {
    let mut messages = tls::handshake(
        "dl-client1.dropbox.com",
        "*.dropbox.com",
        SimDuration::from_millis(40),
    );
    messages.push(Message::simple(
        Direction::Up,
        SimDuration::from_millis(20),
        634 + chunk,
    ));
    messages.push(Message::simple(
        Direction::Down,
        SimDuration::from_millis(60),
        309,
    ));
    let d = Dialogue::new(messages);
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(4),
        outer_rtt: SimDuration::from_millis(96),
        jitter: 0.0,
        loss_up: 0.005,
        loss_down: 0.005,
        up_rate: None,
        down_rate: None,
    };
    let mut pkts = Vec::new();
    simulate_faulty(
        SimTime::from_secs(5),
        key(),
        &d,
        &path,
        &TcpParams::era_2012_v1(),
        Some(&faults),
        &mut Rng::new(9),
        &mut pkts,
    );
    let mut mon = tstat::Monitor::new(true);
    mon.process_flow(&pkts)
}

#[test]
fn retried_store_reports_goodput_not_wire_volume() {
    let rec = faulty_store_record(
        300_000,
        FlowFaults {
            extra_loss: 0.10,
            latency_spike: Some(SimDuration::from_millis(60)),
            reset_after_bytes: None,
        },
    )
    .expect("flow observed");
    assert!(rec.up.rtx_bytes > 0, "10% extra loss must retransmit");
    assert!(!rec.aborted);
    assert_eq!(provider_of(&rec), Provider::Dropbox);
    assert_eq!(dropbox_role(&rec), Some(DropboxRole::ClientStorage));
    assert_eq!(storage_tag(&rec), StorageTag::Store);
    // `bytes` counts unique payload, so the transfer size the analysis
    // reports is independent of how many retransmissions the path forced.
    let clean = faulty_store_record(300_000, FlowFaults::default()).expect("flow observed");
    assert_eq!(rec.up.bytes, clean.up.bytes);
    assert_eq!(transfer_size(&rec), transfer_size(&clean));
    assert_eq!(estimate_chunks(&rec), estimate_chunks(&clean));
    let bps = throughput_bps(&rec).expect("finite throughput");
    assert!(bps.is_finite() && bps > 0.0);
}

#[test]
fn truncated_store_stays_analyzable() {
    let rec = faulty_store_record(
        300_000,
        FlowFaults {
            extra_loss: 0.0,
            latency_spike: None,
            reset_after_bytes: Some(40_000),
        },
    )
    .expect("flow observed");
    assert!(rec.aborted, "mid-write RST must be flagged");
    assert_eq!(rec.close, FlowClose::Rst);
    // Every method tolerates the truncation without panicking; the partial
    // upload still tags as a store and its duration is measurable.
    assert_eq!(dropbox_role(&rec), Some(DropboxRole::ClientStorage));
    assert_eq!(storage_tag(&rec), StorageTag::Store);
    assert!(transfer_size(&rec) < 300_000);
    let _ = estimate_chunks(&rec);
    let _ = reverse_payload_per_chunk(&rec);
    if let Some(d) = transfer_duration(&rec) {
        assert!(!d.is_zero());
    }
    let _ = throughput_bps(&rec);
}

fn degenerate_record(aborted: bool, notify: Option<NotifyMeta>) -> FlowRecord {
    FlowRecord {
        key: key(),
        first_syn: SimTime::from_secs(100),
        last_packet: SimTime::from_secs(100),
        up: DirStats {
            bytes: 0,
            rtx_bytes: 50_000,
            ..DirStats::default()
        },
        down: DirStats::default(),
        min_rtt_ms: None,
        rtt_samples: 0,
        tls_sni: Some("dl-client1.dropbox.com".into()),
        tls_certificate_cn: None,
        http_host: None,
        server_fqdn: if notify.is_some() {
            Some("notify1.dropbox.com".into())
        } else {
            None
        },
        notify,
        close: FlowClose::Rst,
        aborted,
    }
}

#[test]
fn payload_free_aborted_records_never_panic_the_methods() {
    // A connection reset before any payload survived: zero unique bytes in
    // both directions, yet retransmitted junk on the wire.
    let rec = degenerate_record(true, None);
    assert_eq!(provider_of(&rec), Provider::Dropbox);
    let _ = dropbox_role(&rec);
    let _ = storage_tag(&rec);
    assert_eq!(transfer_duration(&rec), None, "no payload, no duration");
    assert_eq!(throughput_bps(&rec), None);
    assert_eq!(estimate_chunks(&rec), 0);
    assert_eq!(reverse_payload_per_chunk(&rec), None);
}

#[test]
fn session_methods_tolerate_aborted_notification_fragments() {
    // Churned notification connections: several aborted fragments and one
    // clean tail, plus a payload-free runt. The session statistics must
    // digest all of them.
    let meta = NotifyMeta {
        host_int: 77,
        namespaces: vec![1, 2],
    };
    let mut flows = Vec::new();
    for (i, aborted) in [(0u64, true), (1, true), (2, false)] {
        let mut f = degenerate_record(aborted, Some(meta.clone()));
        f.first_syn = SimTime::from_secs(1_000 + 400 * i);
        f.last_packet = f.first_syn + SimDuration::from_secs(300);
        f.up.bytes = 350;
        f.down.bytes = if aborted { 0 } else { 160 };
        flows.push(f);
    }
    flows.push(degenerate_record(true, Some(meta)));

    let durations = raw_session_durations(&flows);
    assert!(durations.iter().all(|d| d.is_finite() && *d >= 0.0));
    let sessions = merged_sessions(&flows);
    assert!(!sessions.is_empty());
    for s in &sessions {
        assert!(s.end >= s.start);
    }
    assert_eq!(distinct_devices(&flows), 1);
    assert_eq!(devices_per_household(&flows).len(), 1);
    assert_eq!(namespaces_per_device(&flows).get(&77), Some(&2));
    let per_day = startups_per_day(&flows, 1);
    assert!(per_day.iter().all(|v| v.is_finite()));
    let _ = hourly_profiles(&flows, 1);
}

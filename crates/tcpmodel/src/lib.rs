//! Segment-level TCP connection model with a TLS overlay.
//!
//! Every TCP connection in the simulation is produced by [`simulate`]: given
//! a [`Dialogue`] (the application-level message exchange), a [`PathParams`]
//! (RTTs, loss, access rate) and [`TcpParams`] (MSS, initial windows), it
//! emits the chronological packet stream that crosses the vantage-point
//! probe. The model implements the TCP mechanics the paper's performance
//! section depends on:
//!
//! * 3-way handshake; RTT measurable from SYN/SYN-ACK at the probe,
//! * slow start from a configurable initial window (the paper-era servers
//!   used a small initial window that cost one extra RTT inside the TLS
//!   handshake; Dropbox tuned it after v1.4.0 — both are reproduced),
//! * congestion avoidance, fast retransmit and RTO with slow-start restart,
//! * slow-start-after-idle (connections reused after an idle gap restart
//!   from the initial window),
//! * delayed ACKs (one ACK per two data segments),
//! * PSH set on the last segment of every application write — the property
//!   Appendix A's chunk-counting method relies on,
//! * receiver-window and access-rate (ADSL/FTTH) throughput caps,
//! * orderly FIN, client RST, and server 60 s idle-timeout closes.
//!
//! Connections are independent: each is simulated standalone as a pure
//! function of its inputs and its RNG fork, which keeps the 42-day
//! simulation embarrassingly parallel and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod dialogue;
pub mod params;
pub mod tls;

pub use conn::{simulate, simulate_faulty, ConnSummary};
pub use dialogue::{CloseMode, Dialogue, Direction, Message, Write};
pub use params::{AccessLink, PathParams, TcpParams};

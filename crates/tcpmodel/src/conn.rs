//! The per-connection TCP simulator.
//!
//! [`simulate`] plays a [`Dialogue`] over a modelled path and appends every
//! packet that crosses the vantage-point probe to the output buffer, in
//! chronological order. The transfer engine is round-based: each RTT the
//! sender emits up to a congestion window of segments, the receiver
//! acknowledges (delayed ACKs), and the window evolves by slow start /
//! congestion avoidance, with fast-retransmit and RTO recovery on loss.
//! This is the granularity at which the paper's effects live — slow-start
//! latency for small flows (Fig. 9's θ bound), sequential-acknowledgment
//! stalls for many-chunk flows (Fig. 10), and retransmission counts.

use crate::dialogue::{CloseMode, Dialogue, Direction};
use crate::params::{PathParams, TcpParams};
use nettrace::{AppMarker, FlowKey, Packet, TcpFlags};
use simcore::faults::FlowFaults;
use simcore::{Rng, SimDuration, SimTime};

/// Result of simulating one connection.
#[derive(Clone, Debug)]
pub struct ConnSummary {
    /// When the three-way handshake completed at the client.
    pub established: SimTime,
    /// Probe timestamp of the last packet of the connection.
    pub last_packet: SimTime,
    /// Delivery time (arrival of the last byte at the receiver) of each
    /// message, in dialogue order. When a fault profile cuts the flow
    /// mid-transfer ([`ConnSummary::aborted`]) only the messages that
    /// completed before the reset have entries.
    pub deliveries: Vec<SimTime>,
    /// Application payload bytes sent by the client (including TLS framing).
    pub bytes_up: u64,
    /// Application payload bytes sent by the server.
    pub bytes_down: u64,
    /// Retransmitted segments, client direction.
    pub rtx_up: u64,
    /// Retransmitted segments, server direction.
    pub rtx_down: u64,
    /// Retransmitted payload bytes, client direction.
    pub rtx_bytes_up: u64,
    /// Retransmitted payload bytes, server direction.
    pub rtx_bytes_down: u64,
    /// Whether a fault profile cut the connection before the dialogue
    /// finished (the client emitted an RST instead of the normal close).
    pub aborted: bool,
}

/// Per-direction sender state.
struct Sender {
    next_seq: u32,
    cwnd: f64,
    ssthresh: f64,
    initcwnd: f64,
    last_activity: SimTime,
    bytes_sent: u64,
    rtx_segments: u64,
    rtx_bytes: u64,
}

impl Sender {
    fn new(initcwnd: u32, now: SimTime) -> Self {
        Sender {
            next_seq: 1, // SYN consumed sequence 0
            cwnd: initcwnd as f64,
            ssthresh: f64::INFINITY,
            initcwnd: initcwnd as f64,
            last_activity: now,
            bytes_sent: 0,
            rtx_segments: 0,
            rtx_bytes: 0,
        }
    }

    /// Slow-start restart after idle.
    fn maybe_idle_restart(&mut self, now: SimTime, idle_after: SimDuration) {
        if now.saturating_since(self.last_activity) > idle_after {
            self.cwnd = self.initcwnd;
            self.ssthresh = f64::INFINITY;
        }
    }

    fn on_ack_progress(&mut self, acked_segments: u32) {
        for _ in 0..acked_segments {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start: doubles per RTT
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
        }
    }

    fn on_loss(&mut self, fast: bool) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = if fast { self.ssthresh } else { 1.0 };
    }
}

/// Everything needed to emit probe-timestamped packets.
struct Wire<'a> {
    key: FlowKey,
    path: &'a PathParams,
    out: &'a mut Vec<Packet>,
    last_ts: SimTime,
}

impl Wire<'_> {
    /// One-way latency from the sender of `dir` to the probe.
    fn to_probe(&self, dir: Direction) -> SimDuration {
        match dir {
            Direction::Up => self.path.inner_rtt / 2,
            Direction::Down => self.path.outer_rtt / 2,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        dir: Direction,
        send_time: SimTime,
        seq: u32,
        ack_no: u32,
        flags: TcpFlags,
        payload: u32,
        marker: Option<AppMarker>,
    ) {
        let ts = send_time + self.to_probe(dir);
        let (src, dst) = match dir {
            Direction::Up => (self.key.client, self.key.server),
            Direction::Down => (self.key.server, self.key.client),
        };
        self.last_ts = self.last_ts.max(ts);
        self.out.push(Packet {
            ts,
            src,
            dst,
            seq,
            ack_no,
            flags,
            payload_len: payload,
            marker,
        });
    }
}

/// Simulate one connection; packets are appended to `out` and then the
/// appended range is sorted by probe timestamp.
#[allow(clippy::too_many_arguments)]
pub fn simulate(
    start: SimTime,
    key: FlowKey,
    dialogue: &Dialogue,
    path: &PathParams,
    tcp: &TcpParams,
    rng: &mut Rng,
    out: &mut Vec<Packet>,
) -> ConnSummary {
    simulate_faulty(start, key, dialogue, path, tcp, None, rng, out)
}

/// [`simulate`] with an optional fault profile layered on top of the
/// path: extra segment loss raises retransmissions and shrinks the
/// congestion window, a latency spike stretches every round trip, and
/// `reset_after_bytes` cuts the connection (client RST) once that much
/// payload — both directions combined — has been put on the wire.
///
/// `faults: None` (and an all-default profile) takes exactly the code
/// paths of the plain simulator: same packets, same RNG draws,
/// byte-for-byte identical output.
#[allow(clippy::too_many_arguments)]
pub fn simulate_faulty(
    start: SimTime,
    key: FlowKey,
    dialogue: &Dialogue,
    path: &PathParams,
    tcp: &TcpParams,
    faults: Option<&FlowFaults>,
    rng: &mut Rng,
    out: &mut Vec<Packet>,
) -> ConnSummary {
    let spike = faults
        .and_then(|f| f.latency_spike)
        .unwrap_or(SimDuration::ZERO);
    let extra_loss = faults.map(|f| f.extra_loss).unwrap_or(0.0);
    let reset_after = faults.and_then(|f| f.reset_after_bytes);

    let first_new = out.len();
    let mut wire = Wire {
        key,
        path,
        out,
        last_ts: start,
    };
    let total_rtt = path.total_rtt() + spike;

    // --- Three-way handshake -------------------------------------------
    // SYN / SYN-ACK / ACK. Handshake loss is not modelled (negligible for
    // every analysis in the paper).
    wire.emit(Direction::Up, start, 0, 0, TcpFlags::SYN, 0, None);
    let synack_time = start + total_rtt / 2;
    wire.emit(
        Direction::Down,
        synack_time,
        0,
        1,
        TcpFlags::SYN.union(TcpFlags::ACK),
        0,
        None,
    );
    let established = start + total_rtt;
    wire.emit(Direction::Up, established, 1, 1, TcpFlags::ACK, 0, None);

    let mut up = Sender::new(tcp.client_initcwnd, established);
    let mut down = Sender::new(tcp.server_initcwnd, established);
    // Cumulative bytes received per direction (for ACK numbers).
    let mut recvd_up: u32 = 1;
    let mut recvd_down: u32 = 1;

    let mut deliveries = Vec::with_capacity(dialogue.messages.len());
    // Time at which the next message may be triggered.
    let mut ready = established;
    // Payload bytes on the wire in both directions, for the reset trigger.
    let mut total_payload_sent: u64 = 0;
    let mut aborted = false;
    let mut abort_at = established;

    'msgs: for msg in &dialogue.messages {
        let trigger = ready + msg.delay;
        let mut clock = trigger;
        // The peer only sends ACKs during this message, so its sequence
        // number is fixed for the duration; capture it before borrowing.
        let peer_next_seq = match msg.dir {
            Direction::Up => down.next_seq,
            Direction::Down => up.next_seq,
        };
        let sender = match msg.dir {
            Direction::Up => &mut up,
            Direction::Down => &mut down,
        };
        sender.maybe_idle_restart(trigger, tcp.idle_restart);

        // Build the segment plan for the whole message: (len, psh, marker).
        let mut segments: Vec<(u32, bool, Option<AppMarker>)> = Vec::new();
        for w in &msg.writes {
            debug_assert!(w.size > 0, "zero-size write");
            let mut remaining = w.size;
            let mut first = true;
            while remaining > 0 {
                let len = remaining.min(tcp.mss);
                remaining -= len;
                let marker = if first { w.marker.clone() } else { None };
                first = false;
                segments.push((len, remaining == 0, marker));
            }
        }

        let rate = match msg.dir {
            Direction::Up => path.up_rate,
            Direction::Down => path.down_rate,
        };

        // Round-based transfer with a retransmission queue.
        let mut idx = 0usize; // next fresh segment
        let mut rtx_queue: Vec<(u32, u32, bool)> = Vec::new(); // (seq, len, psh)
        let mut last_arrival = clock;
        while idx < segments.len() || !rtx_queue.is_empty() {
            let rtt_round = total_rtt.mul_f64(1.0 + path.jitter * rng.f64());
            let window = (sender.cwnd as u32).clamp(1, tcp.rwnd_segments) as usize;

            // Compose this round's burst: retransmissions first.
            let mut burst: Vec<(u32, u32, bool, Option<AppMarker>, bool)> = Vec::new();
            for &(seq, len, psh) in rtx_queue.iter().take(window) {
                burst.push((seq, len, psh, None, true));
            }
            let rtx_in_burst = burst.len();
            rtx_queue.drain(..rtx_in_burst);
            while burst.len() < window && idx < segments.len() {
                let (len, psh, marker) = segments[idx].clone();
                burst.push((sender.next_seq, len, psh, marker, false));
                sender.next_seq = sender.next_seq.wrapping_add(len);
                idx += 1;
            }

            let burst_bytes: u64 = burst.iter().map(|s| s.1 as u64).sum();
            // Serialisation time under an access-rate cap.
            let serialize = rate
                .map(|r| SimDuration::from_secs_f64(burst_bytes as f64 / r as f64))
                .unwrap_or(SimDuration::ZERO);

            let base_loss = match msg.dir {
                Direction::Up => path.loss_up,
                Direction::Down => path.loss_down,
            };
            let loss_p = if extra_loss > 0.0 {
                (base_loss + extra_loss).min(0.9)
            } else {
                base_loss
            };

            let peer_ack_base = match msg.dir {
                Direction::Up => recvd_down, // server acks carry its own recv count
                Direction::Down => recvd_up,
            };

            let mut delivered = 0usize;
            let mut lost: Vec<(u32, u32, bool)> = Vec::new();
            let mut first_hole: Option<u32> = None;
            let n = burst.len();
            for (i, (seq, len, psh, marker, is_rtx)) in burst.into_iter().enumerate() {
                // Spread segments across the serialisation window.
                let offset = if n > 1 {
                    serialize.mul_f64(i as f64 / n as f64)
                } else {
                    SimDuration::ZERO
                };
                let send_t = clock + offset;
                let mut flags = TcpFlags::ACK;
                if psh {
                    flags = flags.union(TcpFlags::PSH);
                }
                wire.emit(msg.dir, send_t, seq, peer_ack_base, flags, len, marker);
                sender.bytes_sent += len as u64;
                total_payload_sent += len as u64;
                if is_rtx {
                    sender.rtx_segments += 1;
                    sender.rtx_bytes += len as u64;
                }
                let dropped = loss_p > 0.0 && rng.chance(loss_p);
                if dropped && !is_rtx {
                    lost.push((seq, len, psh));
                    if first_hole.is_none() {
                        first_hole = Some(seq);
                    }
                } else {
                    delivered += 1;
                    // Receiver-side bookkeeping happens below.
                    let arrival = send_t + rtt_round / 2;
                    last_arrival = last_arrival.max(arrival);
                }
            }

            // Receiver ACKs: cumulative up to the first hole; one delayed
            // ACK per two delivered segments (at least one).
            let delivered_bytes: u32 = if lost.is_empty() {
                burst_bytes as u32
            } else {
                // Bytes before the first hole.
                let hole = first_hole.expect("hole recorded");
                hole.wrapping_sub(match msg.dir {
                    Direction::Up => recvd_up,
                    Direction::Down => recvd_down,
                })
            };
            let new_recvd = match msg.dir {
                Direction::Up => {
                    recvd_up = recvd_up.wrapping_add(delivered_bytes);
                    recvd_up
                }
                Direction::Down => {
                    recvd_down = recvd_down.wrapping_add(delivered_bytes);
                    recvd_down
                }
            };
            if delivered > 0 {
                let n_acks = delivered.div_ceil(2);
                let ack_time = clock + serialize + rtt_round / 2;
                for a in 0..n_acks {
                    // Dup-ACKs all carry the same cumulative number when a
                    // hole exists; spacing is cosmetic.
                    let t = ack_time + SimDuration::from_micros(a as u64 * 50);
                    wire.emit(
                        msg.dir.flip(),
                        t,
                        peer_next_seq,
                        new_recvd,
                        TcpFlags::ACK,
                        0,
                        None,
                    );
                }
            }

            // Window evolution and next-round clock.
            if lost.is_empty() {
                sender.on_ack_progress(delivered as u32);
                clock = clock + serialize.max(SimDuration::ZERO) + rtt_round;
                // When everything has been sent we do not need to wait for
                // the final ACK round to trigger the peer's reply: the peer
                // reacts to the *arrival* of the data. `clock` advances for
                // the sender only.
            } else {
                let fast = delivered >= 3;
                sender.on_loss(fast);
                rtx_queue.splice(0..0, lost);
                let recovery = if fast {
                    rtt_round
                } else {
                    tcp.min_rto.max(rtt_round * 2)
                };
                clock = clock + serialize + recovery;
            }

            // Mid-flow reset: once enough payload is on the wire the
            // connection dies at the end of this round; the rest of the
            // dialogue (including its close) never happens.
            if let Some(threshold) = reset_after {
                if total_payload_sent >= threshold {
                    aborted = true;
                    abort_at = clock;
                    break 'msgs;
                }
            }
        }
        sender.last_activity = clock;
        // Delivery: when the last byte reached the receiver.
        deliveries.push(last_arrival);
        ready = last_arrival;
    }

    // --- Close ----------------------------------------------------------
    if aborted {
        // The fault profile cut the flow: the client tears down with a
        // bare RST and nothing else is exchanged.
        wire.emit(
            Direction::Up,
            abort_at,
            up.next_seq,
            recvd_down,
            TcpFlags::RST,
            0,
            None,
        );
        let last_packet = wire.last_ts;
        out[first_new..].sort_by_key(|p| p.ts);
        return ConnSummary {
            established,
            last_packet,
            deliveries,
            bytes_up: up.bytes_sent,
            bytes_down: down.bytes_sent,
            rtx_up: up.rtx_segments,
            rtx_down: down.rtx_segments,
            rtx_bytes_up: up.rtx_bytes,
            rtx_bytes_down: down.rtx_bytes,
            aborted: true,
        };
    }
    match dialogue.close {
        CloseMode::ServerIdleTimeout { idle, alert_size } => {
            let t = ready + idle;
            // Alert (PSH) + FIN in one segment, then client RST.
            wire.emit(
                Direction::Down,
                t,
                down.next_seq,
                recvd_up,
                TcpFlags::PSH.union(TcpFlags::ACK).union(TcpFlags::FIN),
                alert_size,
                None,
            );
            down.bytes_sent += alert_size as u64;
            let rst_t = t + total_rtt / 2;
            wire.emit(
                Direction::Up,
                rst_t,
                up.next_seq,
                recvd_down,
                TcpFlags::RST,
                0,
                None,
            );
        }
        CloseMode::ClientFin { delay } => {
            let t = ready + delay;
            wire.emit(
                Direction::Up,
                t,
                up.next_seq,
                recvd_down,
                TcpFlags::FIN.union(TcpFlags::ACK),
                0,
                None,
            );
            let t2 = t + total_rtt / 2;
            wire.emit(
                Direction::Down,
                t2,
                down.next_seq,
                recvd_up.wrapping_add(1),
                TcpFlags::FIN.union(TcpFlags::ACK),
                0,
                None,
            );
            wire.emit(
                Direction::Up,
                t + total_rtt,
                up.next_seq.wrapping_add(1),
                recvd_down.wrapping_add(1),
                TcpFlags::ACK,
                0,
                None,
            );
        }
        CloseMode::ClientRst { delay } => {
            let t = ready + delay;
            wire.emit(
                Direction::Up,
                t,
                up.next_seq,
                recvd_down,
                TcpFlags::RST,
                0,
                None,
            );
        }
        CloseMode::LeftOpen => {}
    }

    let last_packet = wire.last_ts;
    out[first_new..].sort_by_key(|p| p.ts);

    ConnSummary {
        established,
        last_packet,
        deliveries,
        bytes_up: up.bytes_sent,
        bytes_down: down.bytes_sent,
        rtx_up: up.rtx_segments,
        rtx_down: down.rtx_segments,
        rtx_bytes_up: up.rtx_bytes,
        rtx_bytes_down: down.rtx_bytes,
        aborted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialogue::{Message, Write};
    use nettrace::{Endpoint, Ipv4};

    fn key() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
            Endpoint::new(Ipv4::new(199, 47, 216, 10), 443),
        )
    }

    fn path_100ms() -> PathParams {
        PathParams {
            inner_rtt: SimDuration::from_millis(10),
            outer_rtt: SimDuration::from_millis(90),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        }
    }

    fn run(dialogue: Dialogue, path: PathParams) -> (Vec<Packet>, ConnSummary) {
        let mut out = Vec::new();
        let mut rng = Rng::new(1);
        let s = simulate(
            SimTime::from_secs(10),
            key(),
            &dialogue,
            &path,
            &TcpParams::era_2012_v1(),
            &mut rng,
            &mut out,
        );
        (out, s)
    }

    #[test]
    fn handshake_rtt_visible_at_probe() {
        let d = Dialogue::new(vec![Message::simple(Direction::Up, SimDuration::ZERO, 100)])
            .with_close(CloseMode::LeftOpen);
        let (pkts, _) = run(d, path_100ms());
        let syn = pkts
            .iter()
            .find(|p| p.flags.syn() && !p.flags.ack())
            .unwrap();
        let synack = pkts
            .iter()
            .find(|p| p.flags.syn() && p.flags.ack())
            .unwrap();
        // Probe-to-server RTT = outer_rtt = 90 ms.
        assert_eq!((synack.ts - syn.ts).millis(), 90);
    }

    #[test]
    fn packets_are_chronological() {
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, 50_000),
            Message::simple(Direction::Down, SimDuration::from_millis(10), 200_000),
        ]);
        let (pkts, _) = run(d, path_100ms());
        for w in pkts.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn psh_on_write_boundaries() {
        let d = Dialogue::new(vec![Message {
            dir: Direction::Up,
            delay: SimDuration::ZERO,
            writes: vec![Write::plain(3_000), Write::plain(500)],
        }])
        .with_close(CloseMode::LeftOpen);
        let (pkts, _) = run(d, path_100ms());
        let psh: Vec<&Packet> = pkts
            .iter()
            .filter(|p| p.flags.psh() && p.payload_len > 0)
            .collect();
        // Two writes -> exactly two PSH segments.
        assert_eq!(psh.len(), 2);
        // The first write spans 3 segments (mss 1430), PSH on the last.
        assert_eq!(psh[0].payload_len, 3_000 - 2 * 1430);
        assert_eq!(psh[1].payload_len, 500);
    }

    #[test]
    fn slow_start_doubles_rounds() {
        // 100 kB with initcwnd 3, mss 1430: segments = 70.
        // Rounds: 3+6+12+24+48 -> 5 rounds in slow start.
        let size = 100_000u32;
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            size,
        )])
        .with_close(CloseMode::LeftOpen);
        let (_, s) = run(d, path_100ms());
        let established = s.established;
        let transfer = s.deliveries[0] - established;
        // Expect ~4*RTT (rounds after the first) + 0.5 RTT final propagation,
        // allow the inner/outer split tolerance.
        let rtts = transfer.as_secs_f64() / 0.1;
        assert!(rtts > 4.0 && rtts < 5.5, "rtts = {rtts}");
    }

    #[test]
    fn sequential_messages_wait_for_delivery() {
        // Request/response: the response trigger includes the request's
        // one-way delivery plus the server reaction delay.
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, 400),
            Message::simple(Direction::Down, SimDuration::from_millis(20), 400),
        ])
        .with_close(CloseMode::LeftOpen);
        let (_, s) = run(d, path_100ms());
        let gap = (s.deliveries[1] - s.deliveries[0]).as_secs_f64();
        // one-way back (50ms) + 20ms reaction = ~70ms.
        assert!((gap - 0.07).abs() < 0.02, "gap = {gap}");
    }

    #[test]
    fn loss_produces_retransmissions() {
        let mut path = path_100ms();
        path.loss_up = 0.05;
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            500_000,
        )])
        .with_close(CloseMode::LeftOpen);
        let (pkts, s) = run(d, path);
        assert!(s.rtx_up > 0, "expected retransmissions");
        // Retransmitted seqs appear at least twice.
        let mut seqs: Vec<u32> = pkts
            .iter()
            .filter(|p| p.payload_len > 0 && p.src == key().client)
            .map(|p| p.seq)
            .collect();
        seqs.sort_unstable();
        let dups = seqs.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(dups as u64 >= s.rtx_up);
        // All bytes still delivered exactly once at the app level.
        assert_eq!(s.bytes_up, 500_000 + s.rtx_up * 1430);
    }

    #[test]
    fn no_loss_no_retransmissions() {
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            1_000_000,
        )])
        .with_close(CloseMode::LeftOpen);
        let (_, s) = run(d, path_100ms());
        assert_eq!(s.rtx_up, 0);
        assert_eq!(s.bytes_up, 1_000_000);
    }

    #[test]
    fn rate_cap_limits_throughput() {
        let mut path = path_100ms();
        path.up_rate = Some(64_000); // 512 kbit/s ADSL-ish uplink
        let size = 512_000u32;
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            size,
        )])
        .with_close(CloseMode::LeftOpen);
        let (_, s) = run(d, path);
        let secs = (s.deliveries[0] - s.established).as_secs_f64();
        let rate = size as f64 / secs;
        assert!(rate < 70_000.0, "rate = {rate} B/s exceeds cap");
        assert!(rate > 40_000.0, "rate = {rate} B/s far below cap");
    }

    #[test]
    fn server_idle_timeout_emits_alert_fin_and_rst() {
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            1_000,
        )]);
        let (pkts, _) = run(d, path_100ms());
        let fin = pkts
            .iter()
            .find(|p| p.flags.fin() && p.src == key().server)
            .expect("server FIN");
        assert!(fin.flags.psh() && fin.payload_len == 37);
        let rst = pkts.iter().find(|p| p.flags.rst()).expect("client RST");
        assert!(rst.ts > fin.ts);
        // Idle gap ≈ 60 s after the data delivery.
        let last_data = pkts
            .iter()
            .filter(|p| p.payload_len > 0 && p.src == key().client)
            .map(|p| p.ts)
            .max()
            .unwrap();
        let gap = (fin.ts - last_data).as_secs_f64();
        assert!((gap - 60.0).abs() < 1.0, "gap = {gap}");
    }

    #[test]
    fn client_fin_close() {
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            1_000,
        )])
        .with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(100),
        });
        let (pkts, _) = run(d, path_100ms());
        let client_fin = pkts.iter().any(|p| p.flags.fin() && p.src == key().client);
        let server_fin = pkts.iter().any(|p| p.flags.fin() && p.src == key().server);
        assert!(client_fin && server_fin);
        assert!(!pkts.iter().any(|p| p.flags.rst()));
    }

    #[test]
    fn idle_restart_resets_window() {
        // Two large uploads separated by a long idle gap: the second one
        // must restart slow start, giving a similar per-message duration.
        let size = 200_000u32;
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, size),
            Message::simple(Direction::Up, SimDuration::from_secs(30), size),
        ])
        .with_close(CloseMode::LeftOpen);
        let (_, s) = run(d, path_100ms());
        let t1 = (s.deliveries[0] - s.established).as_secs_f64();
        let t2 = (s.deliveries[1] - (s.deliveries[0] + SimDuration::from_secs(30))).as_secs_f64();
        assert!(
            (t1 - t2).abs() / t1 < 0.35,
            "t1 = {t1}, t2 = {t2}: second transfer should restart slow start"
        );
    }

    fn run_faulty(
        dialogue: Dialogue,
        path: PathParams,
        faults: Option<&FlowFaults>,
    ) -> (Vec<Packet>, ConnSummary) {
        let mut out = Vec::new();
        let mut rng = Rng::new(1);
        let s = simulate_faulty(
            SimTime::from_secs(10),
            key(),
            &dialogue,
            &path,
            &TcpParams::era_2012_v1(),
            faults,
            &mut rng,
            &mut out,
        );
        (out, s)
    }

    #[test]
    fn faults_none_is_byte_identical_to_plain_simulate() {
        let dialogue = || {
            Dialogue::new(vec![
                Message::simple(Direction::Up, SimDuration::ZERO, 300_000),
                Message::simple(Direction::Down, SimDuration::from_millis(8), 40_000),
            ])
        };
        let mut path = path_100ms();
        path.loss_up = 0.02;
        path.jitter = 0.1;
        let (plain, sp) = run(dialogue(), path.clone());
        let (faulty, sf) = run_faulty(dialogue(), path, None);
        assert_eq!(plain, faulty);
        assert_eq!(sp.deliveries, sf.deliveries);
        assert_eq!(sp.bytes_up, sf.bytes_up);
        assert_eq!(sp.rtx_up, sf.rtx_up);
        assert!(!sf.aborted);

        // An all-default profile is equally inert.
        let (defaulted, _) = run_faulty(dialogue_for_default(), path_100ms(), None);
        let (defaulted2, _) = run_faulty(
            dialogue_for_default(),
            path_100ms(),
            Some(&FlowFaults::default()),
        );
        assert_eq!(defaulted, defaulted2);
    }

    fn dialogue_for_default() -> Dialogue {
        Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            9_999,
        )])
        .with_close(CloseMode::LeftOpen)
    }

    #[test]
    fn extra_loss_raises_retransmissions_and_counts_bytes() {
        let d = || {
            Dialogue::new(vec![Message::simple(
                Direction::Up,
                SimDuration::ZERO,
                500_000,
            )])
            .with_close(CloseMode::LeftOpen)
        };
        let (_, clean) = run_faulty(d(), path_100ms(), None);
        let faults = FlowFaults {
            extra_loss: 0.05,
            ..FlowFaults::default()
        };
        let (_, lossy) = run_faulty(d(), path_100ms(), Some(&faults));
        assert_eq!(clean.rtx_up, 0);
        assert!(lossy.rtx_up > 0, "extra loss must force retransmissions");
        assert_eq!(lossy.rtx_bytes_up, lossy.rtx_up * 1430);
        assert_eq!(lossy.bytes_up, 500_000 + lossy.rtx_bytes_up);
        // Goodput suffers: the lossy transfer takes longer.
        assert!(lossy.deliveries[0] > clean.deliveries[0]);
    }

    #[test]
    fn latency_spike_stretches_round_trips() {
        let d = || {
            Dialogue::new(vec![Message::simple(Direction::Up, SimDuration::ZERO, 100)])
                .with_close(CloseMode::LeftOpen)
        };
        let faults = FlowFaults {
            latency_spike: Some(SimDuration::from_millis(100)),
            ..FlowFaults::default()
        };
        let (pkts, _) = run_faulty(d(), path_100ms(), Some(&faults));
        let syn = pkts
            .iter()
            .find(|p| p.flags.syn() && !p.flags.ack())
            .unwrap();
        let synack = pkts
            .iter()
            .find(|p| p.flags.syn() && p.flags.ack())
            .unwrap();
        // Base probe-to-server gap is outer_rtt (90 ms); the spike adds
        // half of itself on each one-way leg past the probe.
        assert_eq!((synack.ts - syn.ts).millis(), 90 + 50);
    }

    #[test]
    fn reset_truncates_flow_with_client_rst() {
        let d = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            500_000,
        )]);
        let faults = FlowFaults {
            reset_after_bytes: Some(50_000),
            ..FlowFaults::default()
        };
        let (pkts, s) = run_faulty(d, path_100ms(), Some(&faults));
        assert!(s.aborted);
        assert!(s.deliveries.is_empty(), "truncated message never delivers");
        assert!(s.bytes_up >= 50_000, "reset fires only past the threshold");
        assert!(s.bytes_up < 300_000, "most of the transfer must be cut");
        let last = pkts.last().unwrap();
        assert!(last.flags.rst() && last.src == key().client);
        // No FIN, no server idle-timeout alert: the dialogue close never runs.
        assert!(!pkts.iter().any(|p| p.flags.fin()));
    }

    #[test]
    fn reset_between_messages_keeps_completed_deliveries() {
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, 10_000),
            Message::simple(Direction::Down, SimDuration::from_millis(5), 400_000),
        ])
        .with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(10),
        });
        let faults = FlowFaults {
            reset_after_bytes: Some(60_000),
            ..FlowFaults::default()
        };
        let (pkts, s) = run_faulty(d, path_100ms(), Some(&faults));
        assert!(s.aborted);
        assert_eq!(s.deliveries.len(), 1, "first message completed");
        assert_eq!(s.bytes_up, 10_000);
        assert!(s.bytes_down < 400_000);
        assert!(pkts.iter().any(|p| p.flags.rst()));
    }

    #[test]
    fn delivered_bytes_match_dialogue() {
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, 12_345),
            Message::simple(Direction::Down, SimDuration::from_millis(5), 67_890),
        ])
        .with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(10),
        });
        let (pkts, s) = run(d, path_100ms());
        assert_eq!(s.bytes_up, 12_345);
        assert_eq!(s.bytes_down, 67_890);
        let up_payload: u64 = pkts
            .iter()
            .filter(|p| p.src == key().client)
            .map(|p| p.payload_len as u64)
            .sum();
        assert_eq!(up_payload, 12_345);
    }
}

//! Application-level dialogues.
//!
//! A [`Dialogue`] describes what the two endpoints say to each other over
//! one TCP connection: an ordered list of [`Message`]s, each triggered when
//! the previous message has been fully delivered plus a think/reaction
//! delay. This sequential structure is exactly how the Dropbox storage
//! protocol behaves in v1.2.52 (store → per-chunk OK → next store …) and is
//! what produces the sequential-acknowledgment bottleneck of Sec. 4.4.2.

use nettrace::AppMarker;
use simcore::SimDuration;

/// Which endpoint sends a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Client → server ("upload" direction at the probe).
    Up,
    /// Server → client ("download" direction at the probe).
    Down,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// One application write. The final TCP segment of every write carries the
/// PSH flag (this is what `write()`/flush boundaries produce on real stacks
/// and what Appendix A's chunk counting keys on).
#[derive(Clone, Debug)]
pub struct Write {
    /// Application bytes in this write.
    pub size: u32,
    /// DPI-visible content attached to the first segment of the write.
    pub marker: Option<AppMarker>,
}

impl Write {
    /// A plain write of `size` bytes.
    pub fn plain(size: u32) -> Self {
        Write { size, marker: None }
    }

    /// A write carrying a DPI-visible marker.
    pub fn marked(size: u32, marker: AppMarker) -> Self {
        Write {
            size,
            marker: Some(marker),
        }
    }
}

/// One application message: one or more writes in a single direction.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sender of the message.
    pub dir: Direction,
    /// Think/reaction time at the sender, measured from the delivery of the
    /// previous message (or from connection establishment for the first).
    pub delay: SimDuration,
    /// The writes making up the message.
    pub writes: Vec<Write>,
}

impl Message {
    /// Single-write message.
    pub fn simple(dir: Direction, delay: SimDuration, size: u32) -> Self {
        Message {
            dir,
            delay,
            writes: vec![Write::plain(size)],
        }
    }

    /// Single-write message with a marker.
    pub fn marked(dir: Direction, delay: SimDuration, size: u32, marker: AppMarker) -> Self {
        Message {
            dir,
            delay,
            writes: vec![Write::marked(size, marker)],
        }
    }

    /// Total bytes of the message.
    pub fn size(&self) -> u32 {
        self.writes.iter().map(|w| w.size).sum()
    }
}

/// How the connection terminates after the last message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseMode {
    /// The server times the connection out after an idle period (Dropbox
    /// storage servers: 60 s), sending a TLS close-notify alert (PSH) +
    /// FIN; the client answers with RST (Fig. 19).
    ServerIdleTimeout {
        /// Idle period before the server closes.
        idle: SimDuration,
        /// Size of the alert record the server sends with the FIN.
        alert_size: u32,
    },
    /// The client closes actively with FIN after a short delay.
    ClientFin {
        /// Delay after the last delivery before the FIN.
        delay: SimDuration,
    },
    /// The connection is killed by an RST from the client side (NAT/firewall
    /// behaviour seen on home notification flows, Sec. 5.5).
    ClientRst {
        /// Delay after the last delivery before the RST.
        delay: SimDuration,
    },
    /// The capture ends while the connection is still open (no close
    /// packets; the monitor flushes it as `Timeout`).
    LeftOpen,
}

/// A full connection script.
#[derive(Clone, Debug)]
pub struct Dialogue {
    /// Messages in trigger order.
    pub messages: Vec<Message>,
    /// Termination behaviour.
    pub close: CloseMode,
}

impl Dialogue {
    /// New dialogue with the default storage-server close behaviour
    /// (60 s idle timeout, 37-byte close-notify alert).
    pub fn new(messages: Vec<Message>) -> Self {
        Dialogue {
            messages,
            close: CloseMode::ServerIdleTimeout {
                idle: SimDuration::from_secs(60),
                alert_size: 37,
            },
        }
    }

    /// Replace the close mode.
    pub fn with_close(mut self, close: CloseMode) -> Self {
        self.close = close;
        self
    }

    /// Total application bytes sent by the client.
    pub fn bytes_up(&self) -> u64 {
        self.messages
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .map(|m| m.size() as u64)
            .sum()
    }

    /// Total application bytes sent by the server (excluding any close
    /// alert).
    pub fn bytes_down(&self) -> u64 {
        self.messages
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .map(|m| m.size() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Up.flip(), Direction::Down);
        assert_eq!(Direction::Down.flip(), Direction::Up);
    }

    #[test]
    fn message_size_sums_writes() {
        let m = Message {
            dir: Direction::Up,
            delay: SimDuration::ZERO,
            writes: vec![Write::plain(100), Write::plain(250)],
        };
        assert_eq!(m.size(), 350);
    }

    #[test]
    fn dialogue_byte_totals() {
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, 500),
            Message::simple(Direction::Down, SimDuration::ZERO, 2_000),
            Message::simple(Direction::Up, SimDuration::ZERO, 300),
        ]);
        assert_eq!(d.bytes_up(), 800);
        assert_eq!(d.bytes_down(), 2_000);
    }
}

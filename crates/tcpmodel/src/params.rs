//! Path and TCP parameters.

use simcore::{Rng, SimDuration};

/// Network-path characteristics of one connection.
///
/// The vantage-point probe sits between the client (inside the monitored
/// network) and the server. The round-trip time is split into an *inner*
/// component (client ↔ probe, i.e. the access technology) and an *outer*
/// component (probe ↔ server); the monitor can only measure the outer part,
/// exactly as the paper notes for Fig. 6.
#[derive(Clone, Debug)]
pub struct PathParams {
    /// Client ↔ probe round-trip time (access link).
    pub inner_rtt: SimDuration,
    /// Probe ↔ server round-trip time (what Tstat measures).
    pub outer_rtt: SimDuration,
    /// Multiplicative RTT jitter: each round's RTT is
    /// `base * (1 + jitter * u)` with `u ∈ [0,1)`, keeping the *minimum*
    /// at the base value (the paper's storage RTTs are stable minima).
    pub jitter: f64,
    /// Per-segment loss probability, client → server.
    pub loss_up: f64,
    /// Per-segment loss probability, server → client.
    pub loss_down: f64,
    /// Access-link uplink rate in bytes/s (`None` = not limiting).
    /// Models the ADSL uplink bottleneck in the home datasets and the
    /// client-side transfer-rate limit the Dropbox client can configure.
    pub up_rate: Option<u64>,
    /// Access-link downlink rate in bytes/s (`None` = not limiting).
    pub down_rate: Option<u64>,
}

impl PathParams {
    /// Full client ↔ server RTT.
    pub fn total_rtt(&self) -> SimDuration {
        self.inner_rtt + self.outer_rtt
    }

    /// An unconstrained LAN-like path, useful in tests.
    pub fn lan() -> Self {
        PathParams {
            inner_rtt: SimDuration::from_millis(1),
            outer_rtt: SimDuration::from_millis(1),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        }
    }
}

/// A named access-link profile (loss/latency/rate) injected ahead of the
/// TCP model, following the Wi-Fi/LTE cloud-storage measurement
/// methodology (multimedia-over-Wi-Fi/LTE companion study): the access
/// technology of the *client*, not the provider, sets the inner RTT,
/// loss, jitter and rate caps of every flow.
#[derive(Clone, Copy, Debug)]
pub struct AccessLink {
    /// Profile name (`wired` | `wifi` | `lte`).
    pub name: &'static str,
    /// Inner (client ↔ probe) RTT range in milliseconds.
    pub latency_ms: (u64, u64),
    /// Per-segment loss probability, both directions.
    pub loss: f64,
    /// Multiplicative RTT jitter (see [`PathParams::jitter`]).
    pub jitter: f64,
    /// Uplink rate cap range in bytes/s (`None` = unconstrained).
    pub up_rate: Option<(u64, u64)>,
    /// Downlink rate cap range in bytes/s (`None` = unconstrained).
    pub down_rate: Option<(u64, u64)>,
}

/// Campus-grade wired Ethernet (the baseline of the paper's Campus 1).
pub static WIRED: AccessLink = AccessLink {
    name: "wired",
    latency_ms: (2, 8),
    loss: 0.0004,
    jitter: 0.06,
    up_rate: None,
    down_rate: None,
};

/// 802.11n-era home/office Wi-Fi: moderate added latency, contention
/// loss, and an effective throughput ceiling well under the air rate.
pub static WIFI: AccessLink = AccessLink {
    name: "wifi",
    latency_ms: (5, 30),
    loss: 0.01,
    jitter: 0.12,
    up_rate: Some((1_500_000, 3_500_000)),
    down_rate: Some((1_500_000, 3_500_000)),
};

/// Early-LTE cellular: high and variable latency, low random loss (HARQ
/// hides most of it), asymmetric rate caps.
pub static LTE: AccessLink = AccessLink {
    name: "lte",
    latency_ms: (30, 90),
    loss: 0.003,
    jitter: 0.25,
    up_rate: Some((600_000, 1_500_000)),
    down_rate: Some((1_200_000, 3_500_000)),
};

impl AccessLink {
    /// Look a profile up by its CLI name.
    pub fn by_name(name: &str) -> Option<&'static AccessLink> {
        match name {
            "wired" => Some(&WIRED),
            "wifi" => Some(&WIFI),
            "lte" => Some(&LTE),
            _ => None,
        }
    }

    /// Draw the path parameters of one flow over this access link toward
    /// a server plane with base RTT `outer`.
    pub fn path(&self, outer: SimDuration, rng: &mut Rng) -> PathParams {
        let inner_ms = rng.range_u64(self.latency_ms.0, self.latency_ms.1);
        let up_rate = self.up_rate.map(|(lo, hi)| rng.range_u64(lo, hi));
        let down_rate = self.down_rate.map(|(lo, hi)| rng.range_u64(lo, hi));
        PathParams {
            inner_rtt: SimDuration::from_millis(inner_ms),
            outer_rtt: outer,
            jitter: self.jitter,
            loss_up: self.loss,
            loss_down: self.loss,
            up_rate,
            down_rate,
        }
    }
}

/// TCP stack parameters for both endpoints of a connection.
#[derive(Clone, Debug)]
pub struct TcpParams {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Client's initial congestion window, in segments.
    pub client_initcwnd: u32,
    /// Server's initial congestion window, in segments. Paper-era Dropbox
    /// servers effectively used 2 (the "pause of 1 RTT during the SSL
    /// handshake", Appendix A.4); after the v1.4.0 deployment this was
    /// tuned up.
    pub server_initcwnd: u32,
    /// Receiver window, in segments (caps the in-flight data).
    pub rwnd_segments: u32,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Idle time after which the congestion window collapses back to the
    /// initial window (slow-start restart).
    pub idle_restart: SimDuration,
}

impl TcpParams {
    /// Parameters matching the paper's capture period (Mar–May 2012,
    /// Dropbox client 1.2.52): small server initial window.
    pub fn era_2012_v1() -> Self {
        TcpParams {
            mss: 1430,
            client_initcwnd: 3,
            server_initcwnd: 2,
            rwnd_segments: 90,
            min_rto: SimDuration::from_millis(300),
            idle_restart: SimDuration::from_secs(1),
        }
    }

    /// Parameters matching the Jun/Jul 2012 re-capture (Dropbox 1.4.0 plus
    /// server initcwnd tuning).
    pub fn era_2012_v14() -> Self {
        TcpParams {
            server_initcwnd: 10,
            ..Self::era_2012_v1()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_rtt_sums_components() {
        let p = PathParams {
            inner_rtt: SimDuration::from_millis(20),
            outer_rtt: SimDuration::from_millis(100),
            ..PathParams::lan()
        };
        assert_eq!(p.total_rtt().millis(), 120);
    }

    #[test]
    fn access_profiles_resolve_and_order_sensibly() {
        for n in ["wired", "wifi", "lte"] {
            assert_eq!(AccessLink::by_name(n).unwrap().name, n);
        }
        assert!(AccessLink::by_name("dialup").is_none());
        // LTE adds more latency and jitter than Wi-Fi, which adds more
        // than wired; only wireless profiles cap rates.
        assert!(LTE.latency_ms.0 > WIFI.latency_ms.0);
        assert!(WIFI.latency_ms.1 > WIRED.latency_ms.1);
        assert!(LTE.jitter > WIFI.jitter && WIFI.jitter > WIRED.jitter);
        assert!(WIRED.up_rate.is_none() && LTE.up_rate.is_some());
        let mut rng = Rng::new(3);
        let p = LTE.path(SimDuration::from_millis(100), &mut rng);
        assert_eq!(p.outer_rtt.millis(), 100);
        assert!((30..=90).contains(&p.inner_rtt.millis()));
        assert!(p.up_rate.unwrap() <= p.down_rate.unwrap() * 3);
    }

    #[test]
    fn era_presets_differ_in_server_window() {
        assert!(
            TcpParams::era_2012_v14().server_initcwnd > TcpParams::era_2012_v1().server_initcwnd
        );
        assert_eq!(TcpParams::era_2012_v1().client_initcwnd, 3);
    }
}

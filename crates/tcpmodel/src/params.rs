//! Path and TCP parameters.

use simcore::SimDuration;

/// Network-path characteristics of one connection.
///
/// The vantage-point probe sits between the client (inside the monitored
/// network) and the server. The round-trip time is split into an *inner*
/// component (client ↔ probe, i.e. the access technology) and an *outer*
/// component (probe ↔ server); the monitor can only measure the outer part,
/// exactly as the paper notes for Fig. 6.
#[derive(Clone, Debug)]
pub struct PathParams {
    /// Client ↔ probe round-trip time (access link).
    pub inner_rtt: SimDuration,
    /// Probe ↔ server round-trip time (what Tstat measures).
    pub outer_rtt: SimDuration,
    /// Multiplicative RTT jitter: each round's RTT is
    /// `base * (1 + jitter * u)` with `u ∈ [0,1)`, keeping the *minimum*
    /// at the base value (the paper's storage RTTs are stable minima).
    pub jitter: f64,
    /// Per-segment loss probability, client → server.
    pub loss_up: f64,
    /// Per-segment loss probability, server → client.
    pub loss_down: f64,
    /// Access-link uplink rate in bytes/s (`None` = not limiting).
    /// Models the ADSL uplink bottleneck in the home datasets and the
    /// client-side transfer-rate limit the Dropbox client can configure.
    pub up_rate: Option<u64>,
    /// Access-link downlink rate in bytes/s (`None` = not limiting).
    pub down_rate: Option<u64>,
}

impl PathParams {
    /// Full client ↔ server RTT.
    pub fn total_rtt(&self) -> SimDuration {
        self.inner_rtt + self.outer_rtt
    }

    /// An unconstrained LAN-like path, useful in tests.
    pub fn lan() -> Self {
        PathParams {
            inner_rtt: SimDuration::from_millis(1),
            outer_rtt: SimDuration::from_millis(1),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        }
    }
}

/// TCP stack parameters for both endpoints of a connection.
#[derive(Clone, Debug)]
pub struct TcpParams {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Client's initial congestion window, in segments.
    pub client_initcwnd: u32,
    /// Server's initial congestion window, in segments. Paper-era Dropbox
    /// servers effectively used 2 (the "pause of 1 RTT during the SSL
    /// handshake", Appendix A.4); after the v1.4.0 deployment this was
    /// tuned up.
    pub server_initcwnd: u32,
    /// Receiver window, in segments (caps the in-flight data).
    pub rwnd_segments: u32,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Idle time after which the congestion window collapses back to the
    /// initial window (slow-start restart).
    pub idle_restart: SimDuration,
}

impl TcpParams {
    /// Parameters matching the paper's capture period (Mar–May 2012,
    /// Dropbox client 1.2.52): small server initial window.
    pub fn era_2012_v1() -> Self {
        TcpParams {
            mss: 1430,
            client_initcwnd: 3,
            server_initcwnd: 2,
            rwnd_segments: 90,
            min_rto: SimDuration::from_millis(300),
            idle_restart: SimDuration::from_secs(1),
        }
    }

    /// Parameters matching the Jun/Jul 2012 re-capture (Dropbox 1.4.0 plus
    /// server initcwnd tuning).
    pub fn era_2012_v14() -> Self {
        TcpParams {
            server_initcwnd: 10,
            ..Self::era_2012_v1()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_rtt_sums_components() {
        let p = PathParams {
            inner_rtt: SimDuration::from_millis(20),
            outer_rtt: SimDuration::from_millis(100),
            ..PathParams::lan()
        };
        assert_eq!(p.total_rtt().millis(), 120);
    }

    #[test]
    fn era_presets_differ_in_server_window() {
        assert!(
            TcpParams::era_2012_v14().server_initcwnd > TcpParams::era_2012_v1().server_initcwnd
        );
        assert_eq!(TcpParams::era_2012_v1().client_initcwnd, 3);
    }
}

//! TLS overlay: dialogue fragments for the handshake and record framing.
//!
//! The monitor must see what a DPI box sees on a real TLS connection: the
//! ClientHello (with the SNI extension), the server Certificate (common
//! name `*.dropbox.com` for every Dropbox service), the handshake record
//! sizes, and from then on only opaque record lengths. The constants below
//! are the ones the paper measured in its testbed (Appendix A):
//!
//! * clients contribute **294 bytes** of handshake,
//! * servers contribute **4103 bytes** (dominated by the certificate chain),
//! * each application record adds a small per-record overhead.
//!
//! With the paper-era server initial window of 2 segments, the 4 kB server
//! flight does not fit in one round — this is the "pause of 1 RTT during
//! the SSL handshake" of Appendix A.4 and makes 4–5 RTTs elapse before the
//! first application byte, as in Fig. 19.

use crate::dialogue::{Direction, Message, Write};
use nettrace::AppMarker;
use simcore::SimDuration;

/// Client handshake bytes (ClientHello + ClientKeyExchange/CCS/Finished).
pub const CLIENT_HANDSHAKE_BYTES: u32 = 294;
/// Server handshake bytes (ServerHello + Certificate + CCS/Finished).
pub const SERVER_HANDSHAKE_BYTES: u32 = 4103;
/// ClientHello share of the client handshake bytes.
pub const CLIENT_HELLO_BYTES: u32 = 160;
/// ServerHello + Certificate share of the server handshake bytes.
pub const SERVER_HELLO_CERT_BYTES: u32 = 4000;
/// TLS record overhead added to each application write (type + version +
/// length + MAC + padding, averaged).
pub const RECORD_OVERHEAD: u32 = 29;
/// Size of the close-notify alert record.
pub const ALERT_BYTES: u32 = 37;

/// The TLS handshake as four dialogue messages (2 round trips after the
/// TCP handshake):
///
/// 1. C→S ClientHello (PSH, carries the SNI),
/// 2. S→C ServerHello + Certificate (PSH, carries the certificate CN),
/// 3. C→S ClientKeyExchange + ChangeCipherSpec + Finished (PSH),
/// 4. S→C ChangeCipherSpec + Finished (PSH).
pub fn handshake(sni: &str, certificate_cn: &str, server_reaction: SimDuration) -> Vec<Message> {
    vec![
        Message::marked(
            Direction::Up,
            SimDuration::ZERO,
            CLIENT_HELLO_BYTES,
            AppMarker::TlsClientHello {
                sni: sni.to_owned(),
            },
        ),
        Message::marked(
            Direction::Down,
            server_reaction,
            SERVER_HELLO_CERT_BYTES,
            AppMarker::TlsCertificate {
                common_name: certificate_cn.to_owned(),
            },
        ),
        Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            CLIENT_HANDSHAKE_BYTES - CLIENT_HELLO_BYTES,
        ),
        Message::simple(
            Direction::Down,
            server_reaction,
            SERVER_HANDSHAKE_BYTES - SERVER_HELLO_CERT_BYTES,
        ),
    ]
}

/// Wrap an application write in TLS record framing (adds the per-record
/// overhead).
pub fn record(size: u32) -> Write {
    Write::plain(size + RECORD_OVERHEAD)
}

/// Total handshake bytes sent by the client.
pub fn client_overhead() -> u32 {
    CLIENT_HANDSHAKE_BYTES
}

/// Total handshake bytes sent by the server.
pub fn server_overhead() -> u32 {
    SERVER_HANDSHAKE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_byte_totals_match_paper() {
        let msgs = handshake("client-lb.dropbox.com", "*.dropbox.com", SimDuration::ZERO);
        let up: u32 = msgs
            .iter()
            .filter(|m| m.dir == Direction::Up)
            .map(|m| m.size())
            .sum();
        let down: u32 = msgs
            .iter()
            .filter(|m| m.dir == Direction::Down)
            .map(|m| m.size())
            .sum();
        assert_eq!(up, 294);
        assert_eq!(down, 4103);
    }

    #[test]
    fn handshake_is_two_round_trips() {
        let msgs = handshake("x", "y", SimDuration::ZERO);
        assert_eq!(msgs.len(), 4);
        let dirs: Vec<Direction> = msgs.iter().map(|m| m.dir).collect();
        assert_eq!(
            dirs,
            [
                Direction::Up,
                Direction::Down,
                Direction::Up,
                Direction::Down
            ]
        );
    }

    #[test]
    fn markers_carry_names() {
        let msgs = handshake("notify1.dropbox.com", "*.dropbox.com", SimDuration::ZERO);
        match &msgs[0].writes[0].marker {
            Some(AppMarker::TlsClientHello { sni }) => assert_eq!(sni, "notify1.dropbox.com"),
            other => panic!("unexpected marker: {other:?}"),
        }
        match &msgs[1].writes[0].marker {
            Some(AppMarker::TlsCertificate { common_name }) => {
                assert_eq!(common_name, "*.dropbox.com")
            }
            other => panic!("unexpected marker: {other:?}"),
        }
    }

    #[test]
    fn record_adds_overhead() {
        assert_eq!(record(100).size, 129);
    }
}

//! Property-based invariants of the TCP model.

use nettrace::{Endpoint, FlowKey, Ipv4, Packet, TcpFlags};
use simcore::proptest::{any_bool, vec_of};
use simcore::{prop_assert, prop_assert_eq, proptest};
use simcore::{Rng, SimDuration, SimTime};
use tcpmodel::{simulate, CloseMode, Dialogue, Direction, Message, PathParams, TcpParams, Write};

fn key() -> FlowKey {
    FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(Ipv4::new(107, 22, 0, 1), 443),
    )
}

fn run(dialogue: &Dialogue, path: &PathParams, seed: u64) -> (Vec<Packet>, tcpmodel::ConnSummary) {
    let mut out = Vec::new();
    let s = simulate(
        SimTime::from_secs(2),
        key(),
        dialogue,
        path,
        &TcpParams::era_2012_v1(),
        &mut Rng::new(seed),
        &mut out,
    );
    (out, s)
}

proptest! {
    #![cases(48)]

    /// Unique payload bytes crossing the probe in each direction equal the
    /// dialogue's byte totals, for any loss rate in either direction.
    #[test]
    fn payload_conservation_under_bidirectional_loss(
        up_size in 1u32..300_000,
        down_size in 1u32..300_000,
        loss_up_m in 0u64..30,
        loss_down_m in 0u64..30,
        seed in 0u64..500,
    ) {
        let d = Dialogue::new(vec![
            Message::simple(Direction::Up, SimDuration::ZERO, up_size),
            Message::simple(Direction::Down, SimDuration::from_millis(10), down_size),
        ])
        .with_close(CloseMode::LeftOpen);
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(12),
            outer_rtt: SimDuration::from_millis(88),
            jitter: 0.05,
            loss_up: loss_up_m as f64 / 1000.0,
            loss_down: loss_down_m as f64 / 1000.0,
            up_rate: None,
            down_rate: None,
        };
        let (pkts, s) = run(&d, &path, seed);
        // Unique sequence coverage per direction (dedup retransmissions).
        let unique = |from_client: bool| -> u64 {
            let mut segs: Vec<(u32, u32)> = pkts
                .iter()
                .filter(|p| (p.src == key().client) == from_client && p.payload_len > 0)
                .map(|p| (p.seq, p.payload_len))
                .collect();
            segs.sort_unstable();
            segs.dedup();
            segs.iter().map(|&(_, l)| l as u64).sum()
        };
        prop_assert_eq!(unique(true), up_size as u64);
        prop_assert_eq!(unique(false), down_size as u64);
        // Summary totals include retransmitted bytes.
        prop_assert!(s.bytes_up >= up_size as u64);
        prop_assert!(s.bytes_down >= down_size as u64);
    }

    /// Packets are emitted in non-decreasing probe time, and deliveries are
    /// monotone in message order.
    #[test]
    fn chronology_and_delivery_monotonicity(
        sizes in vec_of(1u32..60_000, 1..8),
        seed in 0u64..200,
    ) {
        let messages: Vec<Message> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Message::simple(
                if i % 2 == 0 { Direction::Up } else { Direction::Down },
                SimDuration::from_millis(5),
                s,
            ))
            .collect();
        let d = Dialogue::new(messages);
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(10),
            outer_rtt: SimDuration::from_millis(90),
            jitter: 0.08,
            loss_up: 0.005,
            loss_down: 0.005,
            up_rate: None,
            down_rate: None,
        };
        let (pkts, s) = run(&d, &path, seed);
        for w in pkts.windows(2) {
            prop_assert!(w[0].ts <= w[1].ts);
        }
        for w in s.deliveries.windows(2) {
            prop_assert!(w[0] <= w[1], "deliveries out of order");
        }
        prop_assert!(s.last_packet >= *s.deliveries.last().unwrap());
    }

    /// An uplink rate cap can only slow a transfer down, never speed it up.
    #[test]
    fn rate_cap_is_monotone(
        size in 100_000u32..800_000,
        rate_kbps in 64u64..2_000,
    ) {
        let d = Dialogue::new(vec![Message::simple(Direction::Up, SimDuration::ZERO, size)])
            .with_close(CloseMode::LeftOpen);
        let free = PathParams {
            inner_rtt: SimDuration::from_millis(20),
            outer_rtt: SimDuration::from_millis(80),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let capped = PathParams {
            up_rate: Some(rate_kbps * 125), // kbit/s -> B/s
            ..free.clone()
        };
        let (_, s_free) = run(&d, &free, 1);
        let (_, s_capped) = run(&d, &capped, 1);
        let t_free = s_free.deliveries[0] - s_free.established;
        let t_capped = s_capped.deliveries[0] - s_capped.established;
        prop_assert!(t_capped >= t_free, "{t_capped} < {t_free}");
        // And the capped transfer cannot beat the configured line rate by
        // more than a small factor (window granularity).
        let implied = size as f64 / t_capped.as_secs_f64();
        prop_assert!(implied <= 1.5 * (rate_kbps * 125) as f64 + 200_000.0,
            "implied {implied} B/s exceeds cap {}", rate_kbps * 125);
    }

    /// PSH count per direction equals the number of writes, regardless of
    /// message sizes and segmentation — the Appendix A.3 precondition.
    #[test]
    fn psh_equals_write_count(
        writes in vec_of((1u32..20_000, any_bool()), 1..10),
        seed in 0u64..100,
    ) {
        let up_writes: Vec<Write> = writes
            .iter()
            .filter(|&&(_, up)| up)
            .map(|&(s, _)| Write::plain(s))
            .collect();
        let down_writes: Vec<Write> = writes
            .iter()
            .filter(|&&(_, up)| !up)
            .map(|&(s, _)| Write::plain(s))
            .collect();
        let mut messages = Vec::new();
        if !up_writes.is_empty() {
            messages.push(Message { dir: Direction::Up, delay: SimDuration::ZERO, writes: up_writes.clone() });
        }
        if !down_writes.is_empty() {
            messages.push(Message { dir: Direction::Down, delay: SimDuration::from_millis(5), writes: down_writes.clone() });
        }
        let d = Dialogue::new(messages).with_close(CloseMode::LeftOpen);
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(10),
            outer_rtt: SimDuration::from_millis(90),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let (pkts, _) = run(&d, &path, seed);
        let psh = |from_client: bool| pkts
            .iter()
            .filter(|p| (p.src == key().client) == from_client
                && p.payload_len > 0
                && p.flags.contains(TcpFlags::PSH))
            .count();
        prop_assert_eq!(psh(true), up_writes.len());
        prop_assert_eq!(psh(false), down_writes.len());
    }

    /// Close modes emit exactly the packets Fig. 19 shows.
    #[test]
    fn close_mode_packet_shapes(mode in 0u8..3, size in 1u32..50_000) {
        let close = match mode {
            0 => CloseMode::ServerIdleTimeout { idle: SimDuration::from_secs(60), alert_size: 37 },
            1 => CloseMode::ClientFin { delay: SimDuration::from_millis(50) },
            _ => CloseMode::ClientRst { delay: SimDuration::from_millis(50) },
        };
        let d = Dialogue::new(vec![Message::simple(Direction::Up, SimDuration::ZERO, size)])
            .with_close(close);
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(10),
            outer_rtt: SimDuration::from_millis(90),
            jitter: 0.0,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let (pkts, _) = run(&d, &path, 3);
        let server_fin = pkts.iter().filter(|p| p.flags.fin() && p.src == key().server).count();
        let client_fin = pkts.iter().filter(|p| p.flags.fin() && p.src == key().client).count();
        let rst = pkts.iter().filter(|p| p.flags.rst()).count();
        match mode {
            0 => {
                prop_assert_eq!(server_fin, 1);
                prop_assert_eq!(rst, 1);
                prop_assert_eq!(client_fin, 0);
            }
            1 => {
                prop_assert_eq!(client_fin, 1);
                prop_assert_eq!(server_fin, 1);
                prop_assert_eq!(rst, 0);
            }
            _ => {
                prop_assert_eq!(rst, 1);
                prop_assert_eq!(server_fin + client_fin, 0);
            }
        }
    }
}

//! Smoke test: every report generator produces a non-empty body and
//! well-formed CSV artifacts on a tiny capture.

use experiments::run::run_capture;
use experiments::{ablations, figures, recommendations, tables, validation, CaptureSummary};

#[test]
fn every_report_generates() {
    let cap = run_capture(0.012, 21, &workload::FaultPlan::none(), 2);
    let sum = CaptureSummary::compute(&cap);
    let mut reports = vec![
        tables::table1(),
        tables::table2(&sum),
        tables::table3(&sum),
        tables::table4(&sum),
        tables::table5_report(&sum),
        validation::validate(&cap),
    ];
    reports.extend(figures::standalone());
    reports.extend(figures::all_with_capture(&sum));

    assert!(reports.len() >= 27, "reports: {}", reports.len());
    for rep in &reports {
        assert!(!rep.body.trim().is_empty(), "{} empty", rep.id);
        assert!(!rep.render().is_empty());
        for (name, csv) in &rep.artifacts {
            assert!(name.ends_with(".csv"), "{name}");
            // `#` lines are comments (fig9's decimation digest header).
            let mut lines = csv.lines().filter(|l| !l.starts_with('#'));
            let header = lines.next().unwrap_or("");
            let cols = header.split(',').count();
            assert!(cols >= 2, "{}: {name} header {header}", rep.id);
            for (i, line) in lines.enumerate() {
                assert_eq!(
                    line.split(',').count(),
                    cols,
                    "{}:{name} line {} column mismatch",
                    rep.id,
                    i + 2
                );
            }
        }
    }
}

#[test]
fn extension_reports_generate() {
    // The standalone extensions need no capture.
    let rec = recommendations::recommendations();
    assert!(rec.body.contains("bundling"));
    for rep in ablations::all() {
        assert!(!rep.body.trim().is_empty(), "{} empty", rep.id);
        assert!(!rep.artifacts.is_empty(), "{} lacks CSV", rep.id);
    }
}

//! End-to-end pipeline integration: workload → protocol → TCP → monitor →
//! analysis, on a small population.

use inside_dropbox::analysis::classify::{
    dropbox_role, provider_of, storage_tag, DropboxRole, Provider, StorageTag,
};
use inside_dropbox::analysis::groups::{aggregate_households, table5, UserGroup};
use inside_dropbox::analysis::sessions::{distinct_devices, merged_sessions};
use inside_dropbox::prelude::*;

fn small(kind: VantageKind, seed: u64) -> SimOutput {
    let mut config = VantageConfig::paper(kind, 0.02);
    config.days = 10;
    simulate_vantage(&config, ClientVersion::V1_2_52, seed, &FaultPlan::none())
}

#[test]
fn records_are_well_formed() {
    let out = small(VantageKind::Home1, 1);
    assert!(out.dataset.flows.len() > 100);
    for f in &out.dataset.flows {
        assert!(f.last_packet >= f.first_syn, "time order");
        assert!(
            f.first_syn.day() < out.dataset.days,
            "flow starts inside the capture"
        );
        if let Some(rtt) = f.min_rtt_ms {
            assert!(rtt > 0.0 && rtt < 1_000.0, "plausible RTT: {rtt}");
        }
    }
}

#[test]
fn storage_tags_match_ground_truth() {
    let out = small(VantageKind::Home1, 2);
    let mut checked = 0;
    for (f, truth) in out.dataset.flows.iter().zip(&out.truths) {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            continue;
        }
        let expect = match truth {
            Some(FlowTruth::Store { .. }) => StorageTag::Store,
            Some(FlowTruth::Retrieve { .. }) => StorageTag::Retrieve,
            other => panic!("storage flow without storage truth: {other:?}"),
        };
        assert_eq!(storage_tag(f), expect, "f(u) must match ground truth");
        checked += 1;
    }
    assert!(checked > 50, "enough storage flows checked: {checked}");
}

#[test]
fn chunk_estimates_track_ground_truth() {
    let out = small(VantageKind::Campus1, 3);
    let mut total_err = 0.0;
    let mut n = 0u32;
    for (f, truth) in out.dataset.flows.iter().zip(&out.truths) {
        if let Some(FlowTruth::Store {
            chunks,
            acked: true,
            ..
        }) = truth
        {
            let est = inside_dropbox::analysis::chunks::estimate_chunks(f);
            total_err += (est as f64 - *chunks as f64).abs();
            n += 1;
        }
    }
    assert!(n > 20);
    assert!(
        total_err / n as f64 <= 0.25,
        "mean |err| = {}",
        total_err / n as f64
    );
}

#[test]
fn devices_and_sessions_recovered_from_notifications() {
    let out = small(VantageKind::Home1, 4);
    let devices = distinct_devices(&out.dataset.flows);
    assert!(devices > 3, "devices recovered: {devices}");
    let sessions = merged_sessions(&out.dataset.flows);
    assert!(sessions.len() >= devices, "at least one session per device");
    for s in &sessions {
        assert!(s.end >= s.start);
        assert!(!s.namespaces.is_empty(), "root namespace always advertised");
    }
}

#[test]
fn user_groups_are_populated_with_roughly_paper_shares() {
    let mut config = VantageConfig::paper(VantageKind::Home1, 0.05);
    config.days = 14;
    let out = simulate_vantage(&config, ClientVersion::V1_2_52, 5, &FaultPlan::none());
    let households = aggregate_households(&out.dataset.flows);
    let t = table5(&households);
    let sum: f64 = t.values().map(|r| r.addr_frac).sum();
    assert!((sum - 1.0).abs() < 1e-9);
    // Heavy households dominate the volume (Table 5's core finding).
    let heavy = &t[&UserGroup::Heavy];
    let occasional = &t[&UserGroup::Occasional];
    assert!(
        heavy.store_bytes + heavy.retrieve_bytes
            > 10 * (occasional.store_bytes + occasional.retrieve_bytes)
    );
    // All four groups appear.
    for g in UserGroup::ALL {
        assert!(t[&g].addr_frac > 0.0, "{g:?} empty");
    }
}

#[test]
fn provider_mix_includes_background_services() {
    let out = small(VantageKind::Home1, 6);
    let mut providers = std::collections::BTreeSet::new();
    for f in &out.dataset.flows {
        providers.insert(provider_of(f));
    }
    for p in [
        Provider::Dropbox,
        Provider::ICloud,
        Provider::YouTube,
        Provider::Unknown,
    ] {
        assert!(providers.contains(&p), "{p:?} missing");
    }
}

#[test]
fn campus2_works_without_dns_but_home_has_fqdn() {
    let c2 = small(VantageKind::Campus2, 7);
    assert!(c2.dataset.flows.iter().all(|f| f.server_fqdn.is_none()));
    // Classification still works through SNI / Host headers.
    let dropbox = c2
        .dataset
        .flows
        .iter()
        .filter(|f| provider_of(f) == Provider::Dropbox)
        .count();
    assert!(dropbox > 50, "Campus 2 classification via TLS: {dropbox}");
    let h1 = small(VantageKind::Home1, 7);
    assert!(h1.dataset.flows.iter().any(|f| f.server_fqdn.is_some()));
}

#[test]
fn same_seed_same_capture_different_seed_different() {
    let a = small(VantageKind::Home2, 10);
    let b = small(VantageKind::Home2, 10);
    let c = small(VantageKind::Home2, 11);
    let key = |o: &SimOutput| {
        (
            o.dataset.flows.len(),
            o.dataset.flows.iter().map(|f| f.total_bytes()).sum::<u64>(),
        )
    };
    assert_eq!(key(&a), key(&b), "determinism");
    assert_ne!(key(&a), key(&c), "seed sensitivity");
}

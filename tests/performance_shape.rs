//! Shape-level assertions on the paper's performance findings (Sec. 4),
//! measured end-to-end through the monitor on a small population.

use inside_dropbox::analysis::chunks::estimate_chunks;
use inside_dropbox::analysis::classify::{
    dropbox_role, storage_tag, transfer_size, DropboxRole, StorageTag,
};
use inside_dropbox::analysis::throughput::{throughput_bps, transfer_duration, ThetaModel};
use inside_dropbox::prelude::*;

fn capture(kind: VantageKind, version: ClientVersion, seed: u64) -> SimOutput {
    let mut config = VantageConfig::paper(kind, 0.03);
    config.days = 10;
    simulate_vantage(&config, version, seed, &FaultPlan::none())
}

#[test]
fn storage_rtt_below_control_rtt() {
    let out = capture(VantageKind::Home1, ClientVersion::V1_2_52, 1);
    let mut storage = Vec::new();
    let mut control = Vec::new();
    for f in &out.dataset.flows {
        if f.rtt_samples < 10 {
            continue;
        }
        match dropbox_role(f) {
            Some(DropboxRole::ClientStorage) => storage.extend(f.min_rtt_ms),
            // Control plane as in Fig. 6: meta-data + notification servers
            // (short meta connections rarely reach 10 RTT samples).
            Some(DropboxRole::ClientControl | DropboxRole::NotifyControl) => {
                control.extend(f.min_rtt_ms)
            }
            _ => {}
        }
    }
    assert!(storage.len() > 30 && control.len() > 30);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (s, c) = (mean(&storage), mean(&control));
    // Fig. 6: storage in the 80–120 ms band, control in 140–220 ms.
    assert!((80.0..125.0).contains(&s), "storage RTT {s}");
    assert!((140.0..225.0).contains(&c), "control RTT {c}");
    assert!(c > s + 30.0, "control data-center farther away");
}

#[test]
fn throughput_respects_theta_bound() {
    let out = capture(VantageKind::Campus2, ClientVersion::V1_2_52, 2);
    let theta = ThetaModel::paper(SimDuration::from_millis(98));
    let mut n = 0;
    let mut above = 0;
    for f in out.dataset.client_storage_flows() {
        let bytes = transfer_size(f);
        if bytes < 1_000 {
            continue;
        }
        if let Some(thr) = throughput_bps(f) {
            n += 1;
            // Allow a small tolerance for RTT jitter.
            if thr > 1.15 * theta.theta_bps(bytes) {
                above += 1;
            }
        }
    }
    assert!(n > 200, "flows measured: {n}");
    assert!(
        (above as f64) < 0.02 * n as f64,
        "θ is an upper envelope: {above}/{n} above"
    );
}

#[test]
fn many_chunk_flows_are_slow_regardless_of_size() {
    // Sec. 4.4.2: sequential acknowledgments put a duration floor of
    // roughly (RTT + reaction) per chunk on v1.2.52 flows.
    let out = capture(VantageKind::Campus2, ClientVersion::V1_2_52, 3);
    let mut checked = 0;
    for f in out.dataset.client_storage_flows() {
        if storage_tag(f) != StorageTag::Store {
            continue;
        }
        let chunks = estimate_chunks(f);
        if chunks >= 10 {
            let d = transfer_duration(f).unwrap().as_secs_f64();
            assert!(
                d > chunks as f64 * 0.15,
                "{chunks}-chunk flow finished in {d:.1}s"
            );
            checked += 1;
        }
    }
    assert!(checked > 2, "need multi-chunk flows: {checked}");
}

#[test]
fn bundling_improves_median_throughput() {
    // Table 4's direction: the same campus under v1.4.0 gets faster.
    let v1 = capture(VantageKind::Campus1, ClientVersion::V1_2_52, 4);
    let v14 = capture(VantageKind::Campus1, ClientVersion::V1_4_0, 4);
    let med = |out: &SimOutput, tag: StorageTag| -> f64 {
        let mut xs: Vec<f64> = out
            .dataset
            .client_storage_flows()
            .filter(|f| storage_tag(f) == tag)
            .filter_map(throughput_bps)
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        simcore::stats::median(&xs).unwrap_or(0.0)
    };
    let before = med(&v1, StorageTag::Store);
    let after = med(&v14, StorageTag::Store);
    assert!(
        after > before,
        "bundling must improve store throughput: {before:.0} -> {after:.0}"
    );
}

#[test]
fn retrieve_flows_stochastically_larger_than_store() {
    let out = capture(VantageKind::Home1, ClientVersion::V1_2_52, 5);
    let collect = |tag: StorageTag| -> Vec<f64> {
        out.dataset
            .client_storage_flows()
            .filter(|f| storage_tag(f) == tag)
            .map(|f| f.total_bytes() as f64)
            .collect()
    };
    let mut store = collect(StorageTag::Store);
    let mut retr = collect(StorageTag::Retrieve);
    store.sort_by(|a, b| a.partial_cmp(b).unwrap());
    retr.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ms = simcore::stats::median(&store).unwrap();
    let mr = simcore::stats::median(&retr).unwrap();
    assert!(mr > ms * 0.8, "retrieve median {mr:.0} vs store {ms:.0}");
    // Means: retrieve at least comparable (first-sync batches are large).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&retr) > 0.5 * mean(&store));
}

#[test]
fn home2_store_cdf_biased_by_abnormal_client() {
    let out = capture(VantageKind::Home2, ClientVersion::V1_2_52, 6);
    let sizes: Vec<u64> = out
        .dataset
        .client_storage_flows()
        .filter(|f| storage_tag(f) == StorageTag::Store)
        .map(|f| f.total_bytes())
        .collect();
    // The misbehaving uploader pushes a visible mass of ~4 MB single-chunk
    // flows into the Home 2 store CDF (Sec. 4.3.1).
    let four_mb = sizes
        .iter()
        .filter(|&&s| (3_900_000..4_600_000).contains(&s))
        .count();
    assert!(
        four_mb as f64 > 0.02 * sizes.len() as f64,
        "4 MB bias missing: {four_mb}/{}",
        sizes.len()
    );
}

#[test]
fn adsl_homes_slower_than_campus_uplink() {
    let campus = capture(VantageKind::Campus2, ClientVersion::V1_2_52, 7);
    let home = capture(VantageKind::Home2, ClientVersion::V1_2_52, 7);
    let mean_store = |out: &SimOutput| -> f64 {
        let xs: Vec<f64> = out
            .dataset
            .client_storage_flows()
            .filter(|f| storage_tag(f) == StorageTag::Store && transfer_size(f) > 100_000)
            .filter_map(throughput_bps)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let (c, h) = (mean_store(&campus), mean_store(&home));
    assert!(
        c > 1.3 * h,
        "ADSL uplink should throttle large home uploads: campus {c:.0} vs home {h:.0}"
    );
}

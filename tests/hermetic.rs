//! Hermeticity guard: the workspace must build with zero external
//! crates. Every dependency declared in any manifest has to resolve
//! in-tree — a `path` dependency or a `workspace = true` reference to a
//! `[workspace.dependencies]` entry that is itself a path dependency.
//! A registry dependency sneaking in breaks the offline build, so this
//! test fails the moment one appears.

use std::fs;
use std::path::{Path, PathBuf};

/// Section kinds whose entries are dependency declarations.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is the root package directory, which is the
    // workspace root in this repository.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifests() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory");
    for entry in entries {
        let path = entry.expect("read crates/ entry").path().join("Cargo.toml");
        if path.is_file() {
            out.push(path);
        }
    }
    out
}

/// Strip a trailing line comment (ignoring `#` inside strings).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Collect the offending dependency declarations in one manifest.
fn non_path_deps(manifest: &Path) -> Vec<String> {
    let text =
        fs::read_to_string(manifest).unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut bad = Vec::new();
    let mut in_dep_section = false;
    // Some(name) while inside a `[dependencies.name]`-style section that
    // has not yet shown a `path` key.
    let mut pending_named: Option<String> = None;
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(name) = pending_named.take() {
                bad.push(name);
            }
            let section = line.trim_start_matches('[').trim_end_matches(']');
            in_dep_section = DEP_SECTIONS.contains(&section);
            if let Some(name) = DEP_SECTIONS
                .iter()
                .find_map(|s| section.strip_prefix(&format!("{s}.")))
            {
                pending_named = Some(name.to_string());
            }
            continue;
        }
        if let Some(name) = &pending_named {
            if line.starts_with("path") {
                pending_named = None;
            } else if line.starts_with("version") || line.starts_with("git") {
                bad.push(name.clone());
                pending_named = None;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, rhs)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let rhs = rhs.trim();
        // In-tree forms: `{ path = ... }`, `{ workspace = true }`, and the
        // dotted shorthand `name.workspace = true`.
        let in_tree = rhs.contains("path") && rhs.contains('=')
            || rhs.contains("workspace") && rhs.contains("true")
            || name.ends_with(".workspace") && rhs == "true";
        if !in_tree {
            bad.push(name.to_string());
        }
    }
    if let Some(name) = pending_named {
        bad.push(name);
    }
    bad
}

#[test]
fn all_dependencies_are_in_tree() {
    let manifests = manifests();
    assert!(
        manifests.len() > 5,
        "expected the workspace manifests, found {}",
        manifests.len()
    );
    let mut offenders = Vec::new();
    for m in &manifests {
        for dep in non_path_deps(m) {
            offenders.push(format!("{}: {dep}", m.display()));
        }
    }
    assert!(
        offenders.is_empty(),
        "non-path dependencies break the offline build:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn workspace_dependencies_resolve_to_paths() {
    // Every `[workspace.dependencies]` entry must itself be a path
    // dependency; `workspace = true` references inherit from here.
    let root = workspace_root().join("Cargo.toml");
    let text = fs::read_to_string(&root).expect("root manifest");
    let mut in_ws_deps = false;
    let mut checked = 0usize;
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.starts_with('[') {
            in_ws_deps = line == "[workspace.dependencies]";
            continue;
        }
        if !in_ws_deps || line.is_empty() {
            continue;
        }
        let Some((name, rhs)) = line.split_once('=') else {
            continue;
        };
        assert!(
            rhs.contains("path"),
            "workspace dependency `{}` is not a path dependency",
            name.trim()
        );
        checked += 1;
    }
    assert!(checked > 0, "no [workspace.dependencies] entries found");
}

#[test]
fn detector_flags_registry_style_declarations() {
    // Self-check of the scanner on synthetic manifest text.
    let dir = std::env::temp_dir().join("hermetic-selftest");
    fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("Cargo.toml");
    fs::write(
        &bad,
        "[package]\nname = \"x\"\n[dependencies]\nserde = \"1\"\n\
         good = { path = \"../good\" }\ninherited = { workspace = true }\n\
         [dev-dependencies.proptest]\nversion = \"1\"\n",
    )
    .unwrap();
    let offenders = non_path_deps(&bad);
    assert_eq!(offenders, vec!["serde".to_string(), "proptest".to_string()]);
}

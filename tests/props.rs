//! Cross-crate property-based tests, on the in-tree deterministic
//! harness (`simcore::proptest`).

use inside_dropbox::codecs::{apply, compute_delta, lzss, sha256, signature};
use inside_dropbox::monitor::Monitor;
use inside_dropbox::prelude::*;
use inside_dropbox::sim::stats::Ecdf;
use inside_dropbox::trace::{Endpoint, FlowKey, Ipv4};
use simcore::proptest::{any_bool, any_u8, vec_of};
use simcore::{prop_assert, prop_assert_eq, proptest};
use tcpmodel::{CloseMode, Direction, Message, Write};

proptest! {
    #![cases(64)]

    /// LZSS decompress ∘ compress = identity on arbitrary bytes.
    #[test]
    fn lzss_roundtrip(data in vec_of(any_u8(), 0..4096)) {
        let c = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&c).expect("valid stream"), data);
    }

    /// rsync delta: apply(old, delta(old→new)) == new, for arbitrary old,
    /// new derived from old by splice edits.
    #[test]
    fn delta_roundtrip(
        old in vec_of(any_u8(), 0..8192),
        edit_at in 0usize..8192,
        edit in vec_of(any_u8(), 0..256),
    ) {
        let mut new = old.clone();
        let at = edit_at.min(new.len());
        new.splice(at..at, edit);
        let sig = signature(&old, 512);
        let delta = compute_delta(&sig, &new);
        prop_assert_eq!(apply(&old, &delta).expect("applies"), new);
    }

    /// SHA-256 incremental == one-shot under arbitrary chunking.
    #[test]
    fn sha256_chunking_invariance(
        data in vec_of(any_u8(), 0..2048),
        cuts in vec_of(1usize..64, 0..32),
    ) {
        let oneshot = sha256(&data);
        let mut h = inside_dropbox::codecs::sha256::Sha256::new();
        let mut rest: &[u8] = &data;
        for c in cuts {
            let take = c.min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
        }
        h.update(rest);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// ECDF invariants: F is monotone, F(max) = 1, quantile within range.
    #[test]
    fn ecdf_invariants(xs in vec_of(-1e9f64..1e9, 1..200)) {
        let e = Ecdf::new(xs.clone());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.fraction_le(hi), 1.0);
        prop_assert!(e.fraction_le(lo - 1.0) == 0.0);
        let q = e.quantile(0.5).unwrap();
        prop_assert!((lo..=hi).contains(&q));
        let pts = e.points(50);
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    /// End-to-end conservation: for an arbitrary lossless dialogue, the
    /// monitor's byte counters equal the dialogue's byte totals, and the
    /// PSH counts equal the write counts per direction.
    #[test]
    fn monitor_conserves_bytes_and_pushes(
        sizes in vec_of((1u32..40_000, any_bool()), 1..12),
        inner_ms in 1u64..40,
        outer_ms in 20u64..200,
    ) {
        let messages: Vec<Message> = sizes
            .iter()
            .map(|&(size, up)| Message {
                dir: if up { Direction::Up } else { Direction::Down },
                delay: SimDuration::from_millis(5),
                writes: vec![Write::plain(size)],
            })
            .collect();
        let ups: u64 = sizes.iter().filter(|&&(_, up)| up).count() as u64;
        let downs: u64 = sizes.len() as u64 - ups;
        let bytes_up: u64 = sizes.iter().filter(|&&(_, up)| up).map(|&(s, _)| s as u64).sum();
        let bytes_down: u64 = sizes.iter().filter(|&&(_, up)| !up).map(|&(s, _)| s as u64).sum();

        let dialogue = Dialogue::new(messages).with_close(CloseMode::ClientFin {
            delay: SimDuration::from_millis(20),
        });
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(inner_ms),
            outer_rtt: SimDuration::from_millis(outer_ms),
            jitter: 0.03,
            loss_up: 0.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let key = FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 2), 41_000),
            Endpoint::new(Ipv4::new(107, 22, 3, 4), 443),
        );
        let mut packets = Vec::new();
        simulate_connection(
            SimTime::from_secs(3),
            key,
            &dialogue,
            &path,
            &TcpParams::era_2012_v1(),
            &mut simcore::Rng::new(9),
            &mut packets,
        );
        let mut monitor = Monitor::new(false);
        let rec = monitor.process_flow(&packets).expect("record");
        prop_assert_eq!(rec.up.bytes, bytes_up);
        prop_assert_eq!(rec.down.bytes, bytes_down);
        prop_assert_eq!(rec.up.psh_segments, ups);
        prop_assert_eq!(rec.down.psh_segments, downs);
        // Monitor's external RTT equals the configured outer RTT.
        if let Some(rtt) = rec.min_rtt_ms {
            prop_assert!((rtt - outer_ms as f64).abs() < 2.0 + 0.05 * outer_ms as f64);
        }
    }

    /// With loss enabled, unique bytes are still conserved and every loss
    /// event is visible as a retransmission at the probe.
    #[test]
    fn monitor_counts_retransmissions_under_loss(
        size in 50_000u32..400_000,
        loss_milli in 1u64..40, // 0.1% .. 4%
        seed in 0u64..1_000,
    ) {
        let dialogue = Dialogue::new(vec![Message::simple(
            Direction::Up,
            SimDuration::ZERO,
            size,
        )])
        .with_close(CloseMode::ClientFin { delay: SimDuration::from_millis(10) });
        let path = PathParams {
            inner_rtt: SimDuration::from_millis(10),
            outer_rtt: SimDuration::from_millis(90),
            jitter: 0.02,
            loss_up: loss_milli as f64 / 1000.0,
            loss_down: 0.0,
            up_rate: None,
            down_rate: None,
        };
        let key = FlowKey::new(
            Endpoint::new(Ipv4::new(10, 0, 0, 3), 42_000),
            Endpoint::new(Ipv4::new(107, 22, 5, 6), 443),
        );
        let mut packets = Vec::new();
        let summary = simulate_connection(
            SimTime::from_secs(1),
            key,
            &dialogue,
            &path,
            &TcpParams::era_2012_v1(),
            &mut simcore::Rng::new(seed),
            &mut packets,
        );
        let mut monitor = Monitor::new(false);
        let rec = monitor.process_flow(&packets).expect("record");
        prop_assert_eq!(rec.up.bytes, size as u64, "unique bytes conserved");
        prop_assert_eq!(rec.up.retransmissions, summary.rtx_up);
    }

    /// f(u) tagging of synthetic store/retrieve byte profiles is exact for
    /// all chunk counts and sizes in the protocol's domain.
    #[test]
    fn f_u_is_exact_over_protocol_domain(
        chunks in 1u64..=100,
        chunk_bytes in 1u64..4_000_000,
    ) {
        use inside_dropbox::analysis::classify::f_u;
        // Store profile.
        let up = 294 + chunks * (634 + chunk_bytes);
        let down = 4103 + chunks * 309 + 37;
        prop_assert!((down as f64) < f_u(up), "store misclassified");
        // Retrieve profile.
        let up = 294 + chunks * 400;
        let down = 4103 + chunks * (309 + chunk_bytes);
        prop_assert!((down as f64) >= f_u(up), "retrieve misclassified");
    }
}

//! Protocol-level conformance against the constants the paper measured
//! in its testbed (Sec. 2, Appendix A).

use inside_dropbox::analysis::chunks::estimate_chunks;
use inside_dropbox::analysis::classify::{f_u, ssl_adjusted, storage_tag, StorageTag};
use inside_dropbox::dns::DnsDirectory;
use inside_dropbox::monitor::Monitor;
use inside_dropbox::prelude::*;
use inside_dropbox::system::content::ChunkId;
use inside_dropbox::system::storage::ChunkStore;
use inside_dropbox::trace::{Endpoint, FlowKey, Ipv4};

fn play_store(
    n_chunks: u64,
    chunk_bytes: u64,
    version: ClientVersion,
) -> (inside_dropbox::trace::FlowRecord, Vec<FlowSpec>) {
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut engine = SyncEngine::new(
        &dns,
        &store,
        SyncConfig {
            version,
            ..SyncConfig::default()
        },
        7,
    );
    let mut rng = Rng::new(1);
    let chunks: Vec<ChunkWork> = (0..n_chunks)
        .map(|i| ChunkWork {
            id: ChunkId(i),
            wire_bytes: chunk_bytes,
            raw_bytes: chunk_bytes,
        })
        .collect();
    let flows = engine.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
    let spec = flows
        .iter()
        .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
        .expect("storage flow")
        .clone();
    let key = FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(dns.resolve(&spec.server_name).unwrap(), 443),
    );
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(10),
        outer_rtt: SimDuration::from_millis(90),
        jitter: 0.0,
        loss_up: 0.0,
        loss_down: 0.0,
        up_rate: None,
        down_rate: None,
    };
    let mut packets = Vec::new();
    simulate_connection(
        SimTime::from_secs(1),
        key,
        &spec.dialogue,
        &path,
        &TcpParams::era_2012_v1(),
        &mut Rng::new(2),
        &mut packets,
    );
    let mut monitor = Monitor::new(true);
    monitor.observe_dns(&spec.server_name, key.server.ip);
    (monitor.process_flow(&packets).expect("record"), flows)
}

#[test]
fn ssl_handshake_floor_is_about_4kb() {
    // A storage flow with one tiny chunk still carries the TLS handshakes:
    // ≥ 294 B up and ≥ 4103 B down (Appendix A.2).
    let (rec, _) = play_store(1, 64, ClientVersion::V1_2_52);
    assert!(rec.up.bytes >= 294 + 634);
    assert!(rec.down.bytes >= 4103 + 309);
    assert!(
        rec.total_bytes() >= 4_400 && rec.total_bytes() < 12_000,
        "≈4 kB floor: {}",
        rec.total_bytes()
    );
}

#[test]
fn per_chunk_overheads_match_appendix_a() {
    let c = 9u64;
    let (rec, _) = play_store(c, 10_000, ClientVersion::V1_2_52);
    // Server side: handshake + c OKs of exactly 309 B + 37 B close alert.
    assert_eq!(rec.down.bytes, 4103 + c * 309 + 37);
    // Client side: handshake + per-store overhead (634 B + TLS record
    // framing) + chunk bytes.
    assert!(rec.up.bytes >= 294 + c * (634 + 10_000));
    // PSH relation for server-closed flows: c = s - 3 (Appendix A.3).
    assert_eq!(rec.down.psh_segments, 2 + c + 1);
    assert_eq!(estimate_chunks(&rec) as u64, c);
}

#[test]
fn hundred_chunk_cap_bounds_flow_size() {
    // 260 chunks split into ≤100-chunk transactions (Sec. 2.3.2); with
    // 4 MB chunks a flow can never exceed ~400 MB (Fig. 7's maximum).
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), 8);
    let mut rng = Rng::new(3);
    let chunks: Vec<ChunkWork> = (0..260)
        .map(|i| ChunkWork {
            id: ChunkId(i),
            wire_bytes: 4 * 1024 * 1024,
            raw_bytes: 4 * 1024 * 1024,
        })
        .collect();
    let flows = engine.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
    let storage: Vec<_> = flows
        .iter()
        .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
        .collect();
    assert_eq!(storage.len(), 3);
    for s in &storage {
        let chunks = s.truth.chunks().unwrap();
        assert!(chunks <= 100);
        assert!(s.dialogue.bytes_up() <= 420 * 1024 * 1024);
    }
}

#[test]
fn f_u_line_separates_constructed_extremes() {
    // Store flows stay below f(u), retrieve flows above, across sizes.
    for &(chunks, bytes) in &[(1u64, 1_000u64), (5, 50_000), (50, 500_000)] {
        let (rec, _) = play_store(chunks, bytes, ClientVersion::V1_2_52);
        assert_eq!(storage_tag(&rec), StorageTag::Store);
        assert!((rec.down.bytes as f64) < f_u(rec.up.bytes));
    }
}

#[test]
fn ssl_adjustment_recovers_payload() {
    let c = 4u64;
    let size = 25_000u64;
    let (rec, _) = play_store(c, size, ClientVersion::V1_2_52);
    let (up_adj, _) = ssl_adjusted(&rec);
    // Adjusted upload ≈ chunks + per-op overhead; within 10%.
    let expected = c * (size + 634);
    let ratio = up_adj as f64 / expected as f64;
    assert!((0.95..1.10).contains(&ratio), "ratio {ratio}");
}

#[test]
fn v14_bundles_reduce_server_acks() {
    let (rec_v1, _) = play_store(40, 50_000, ClientVersion::V1_2_52);
    let (rec_v14, _) = play_store(40, 50_000, ClientVersion::V1_4_0);
    // v1: one OK per chunk; v1.4: one OK per bundle — far fewer PSH
    // segments from the server.
    assert!(rec_v14.down.psh_segments < rec_v1.down.psh_segments / 4);
    // And the PSH↔chunk relation no longer holds (Sec. 4.5.1 footnote).
    assert_ne!(estimate_chunks(&rec_v14), 40);
}

#[test]
fn upload_transactions_bracket_storage_with_control() {
    let (_, flows) = play_store(3, 10_000, ClientVersion::V1_2_52);
    assert!(matches!(flows.first().unwrap().truth, FlowTruth::Control));
    assert!(matches!(flows.last().unwrap().truth, FlowTruth::Control));
    let names: Vec<&str> = flows.iter().map(|f| f.server_name.as_str()).collect();
    assert!(names[0].contains("client"), "meta first: {names:?}");
    assert!(names[1].starts_with("dl-client"), "storage second");
}

#[test]
fn planetlab_confirms_centralization() {
    let dir = DnsDirectory::new();
    assert!(inside_dropbox::dns::planetlab::is_centralized(
        &dir,
        &[
            "client-lb.dropbox.com",
            "notify3.dropbox.com",
            "dl-client100.dropbox.com"
        ]
    ));
}

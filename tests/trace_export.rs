//! Trace export: the anonymised flow-log (JSON-lines) round-trips through
//! `simcore::json`, and the pcap writer produces structurally valid
//! captures — the counterpart of the paper's published trace repository.

use inside_dropbox::prelude::*;
use inside_dropbox::trace::pcap::PcapWriter;

fn capture() -> SimOutput {
    let mut config = VantageConfig::paper(VantageKind::Home2, 0.01);
    config.days = 5;
    simulate_vantage(&config, ClientVersion::V1_2_52, 99, &FaultPlan::none())
}

#[test]
fn flow_log_roundtrips_as_json_lines() {
    let out = capture();
    let mut jsonl = String::new();
    for f in &out.dataset.flows {
        jsonl.push_str(&simcore::json::to_string(f));
        jsonl.push('\n');
    }
    let parsed: Vec<FlowRecord> = jsonl
        .lines()
        .map(|l| simcore::json::from_str(l).expect("parse"))
        .collect();
    assert_eq!(parsed.len(), out.dataset.flows.len());
    for (a, b) in out.dataset.flows.iter().zip(&parsed) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.up.bytes, b.up.bytes);
        assert_eq!(a.down.bytes, b.down.bytes);
        assert_eq!(a.tls_sni, b.tls_sni);
        assert_eq!(a.notify, b.notify);
    }
}

#[test]
fn exported_log_contains_no_payload() {
    // The paper's privacy constraint: flows only, no payload bytes. The
    // serialised record must not contain any content-carrying field.
    use simcore::json::{Json, ToJson};
    let out = capture();
    let sample = out.dataset.flows[0].to_json();
    let Json::Obj(fields) = &sample else {
        panic!("expected object, got {}", sample.kind());
    };
    for forbidden in ["payload", "data", "content", "body"] {
        assert!(
            !fields
                .iter()
                .any(|(k, _)| k.to_lowercase().contains(forbidden)),
            "field leaking payload: {forbidden}"
        );
    }
}

#[test]
fn pcap_export_is_structurally_valid() {
    // Render one connection and check the pcap framing invariants by
    // walking the file.
    use inside_dropbox::trace::{Endpoint, FlowKey, Ipv4};
    use tcpmodel::{Dialogue, Direction, Message};

    let d = Dialogue::new(vec![
        Message::simple(Direction::Up, SimDuration::ZERO, 5_000),
        Message::simple(Direction::Down, SimDuration::from_millis(50), 20_000),
    ]);
    let key = FlowKey::new(
        Endpoint::new(Ipv4::new(10, 9, 8, 7), 45_000),
        Endpoint::new(Ipv4::new(107, 22, 9, 9), 443),
    );
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(10),
        outer_rtt: SimDuration::from_millis(80),
        jitter: 0.0,
        loss_up: 0.0,
        loss_down: 0.0,
        up_rate: None,
        down_rate: None,
    };
    let mut packets = Vec::new();
    simulate_connection(
        SimTime::from_secs(2),
        key,
        &d,
        &path,
        &TcpParams::era_2012_v1(),
        &mut Rng::new(4),
        &mut packets,
    );
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for p in &packets {
        w.write_packet(p).unwrap();
    }
    assert_eq!(w.packets_written() as usize, packets.len());
    let bytes = w.finish().unwrap();

    // Walk the file: global header, then len-prefixed records.
    assert_eq!(
        u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
        0xa1b2_c3d4
    );
    let mut off = 24usize;
    let mut count = 0usize;
    let mut last_ts = (0u32, 0u32);
    while off < bytes.len() {
        let sec = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let usec = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        let orig = u32::from_le_bytes(bytes[off + 12..off + 16].try_into().unwrap()) as usize;
        assert_eq!(incl, orig, "no truncation");
        assert!(incl >= 54, "at least headers");
        assert!(
            (sec, usec) >= last_ts,
            "pcap timestamps monotonic: {last_ts:?} -> ({sec},{usec})"
        );
        last_ts = (sec, usec);
        off += 16 + incl;
        count += 1;
    }
    assert_eq!(off, bytes.len(), "no trailing garbage");
    assert_eq!(count, packets.len());
}

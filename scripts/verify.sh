#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test from a clean checkout with an empty registry cache (all
# dependencies are in-tree path dependencies; see tests/hermetic.rs).
set -euo pipefail

cd "$(dirname "$0")/.."

# Warnings are errors throughout tier-1 (exported once so every cargo
# invocation below shares one build fingerprint and artifact cache).
export RUSTFLAGS="-D warnings"

cargo fmt --check

# Committed CSV artifacts must stay small — the full Fig. 9 scatter grows
# linearly with the capture and is committed decimated + digested (see
# figures::fig9). Fails on any tracked or staged results/*.csv above the
# cap.
max_csv_bytes=262144
while IFS= read -r f; do
    [ -f "$f" ] || continue
    size=$(wc -c < "$f")
    if [ "$size" -gt "$max_csv_bytes" ]; then
        echo "error: $f is $size bytes (cap $max_csv_bytes): decimate or digest bulk CSV dumps" >&2
        exit 1
    fi
done < <({ git ls-files 'results/*.csv'; \
           git diff --cached --name-only --diff-filter=AM -- 'results/*.csv'; } | sort -u)

# Determinism & hermeticity lint: hard gate, exits non-zero on any
# violation and writes results/simlint_report.json. Runs twice: the
# second run must be served entirely from the warm incremental cache
# (target/simlint-cache.json) and still reproduce the committed report
# byte-for-byte — catching both lint regressions and cache unsoundness.
cargo run --release --offline -p simlint
cargo run --release --offline -p simlint
git diff --exit-code -- results/simlint_report.json
# Suppressions must not outlive the code they excuse: any stale-allow in
# the report — violation or pinned — fails the gate outright.
if grep -q '"rule":"stale-allow"' results/simlint_report.json; then
    echo "error: stale allow annotation(s) recorded in results/simlint_report.json" >&2
    exit 1
fi

cargo build --release --offline
cargo test -q --offline

# Rustdoc is part of tier-1: crate docs must build warning-clean.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Fault-injected smoke run: the whole reproduction pipeline must survive a
# lossy plan (resets, retries, outages) end to end — and a parallel run of
# the same pipeline (8 workers over the household sub-shards, plus an
# unsharded run) must be byte-identical to the serial one.
smoke_dir="$(mktemp -d)"
par_dir="$(mktemp -d)"
coarse_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$par_dir" "$coarse_dir"' EXIT
cargo run --release --offline -p experiments --bin repro -- \
    table2 --scale 0.01 --faults 7 --jobs 1 --out "$smoke_dir"
test -s "$smoke_dir/table2.txt"
cargo run --release --offline -p experiments --bin repro -- \
    table2 --scale 0.01 --faults 7 --jobs 8 --out "$par_dir"
diff -r "$smoke_dir" "$par_dir"
cargo run --release --offline -p experiments --bin repro -- \
    table2 --scale 0.01 --faults 7 --jobs 8 --hh-shards 1 --out "$coarse_dir"
diff -r "$smoke_dir" "$coarse_dir"

# Provider-matrix smoke: every spec through the same Home 1 workload on
# an LTE access profile, twice — the artifacts (throughput CDFs, volume
# table, bundling-vs-RTT sweep) must be deterministic run over run.
matrix_dir="$(mktemp -d)"
matrix_dir2="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$par_dir" "$coarse_dir" "$matrix_dir" "$matrix_dir2"' EXIT
cargo run --release --offline -p experiments --bin repro -- \
    --provider-matrix --access lte --scale 0.02 --jobs 4 --out "$matrix_dir"
test -s "$matrix_dir/provider_matrix.txt"
test -s "$matrix_dir/provider_matrix_cdf.csv"
test -s "$matrix_dir/provider_bundling_rtt.csv"
grep -q "forced to \`lte\`" "$matrix_dir/provider_matrix.txt"
cargo run --release --offline -p experiments --bin repro -- \
    --provider-matrix --access lte --scale 0.02 --jobs 1 --out "$matrix_dir2"
diff -r "$matrix_dir" "$matrix_dir2"

# Chaos-soak smoke: 32 seeded control-plane fault scenarios, each checked
# against the sync-convergence oracle; `repro --chaos` exits non-zero on
# any violation.
chaos_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$par_dir" "$coarse_dir" "$matrix_dir" "$matrix_dir2" "$chaos_dir"' EXIT
cargo run --release --offline -p experiments --bin repro -- \
    --chaos 32 --out "$chaos_dir"
test -s "$chaos_dir/chaos_soak.txt"
grep -q "convergence oracle: PASS" "$chaos_dir/chaos_soak.txt"

# Fault-substrate benchmark (writes crates/bench/BENCH_faults.json).
cargo bench --offline -p bench --bench faults
test -s crates/bench/BENCH_faults.json

# Lint-pass benchmark (writes crates/bench/BENCH_simlint.json).
cargo bench --offline -p bench --bench simlint
test -s crates/bench/BENCH_simlint.json

# Serial-vs-parallel capture benchmark (writes
# crates/bench/BENCH_parallel.json; schedule_speedup is the
# hardware-independent figure — see the file's "note").
cargo bench --offline -p bench --bench parallel
test -s crates/bench/BENCH_parallel.json

# Streaming-summary benchmark (writes crates/bench/BENCH_stream.json):
# the single shared pass must digest the full-scale (1.0) capture.
cargo bench --offline -p bench --bench stream
test -s crates/bench/BENCH_stream.json

# Chaos-soak benchmark (writes crates/bench/BENCH_chaos.json:
# scenarios/sec through the audited driver + oracle).
cargo bench --offline -p bench --bench chaos
test -s crates/bench/BENCH_chaos.json

# Provider-spec engine benchmark (writes crates/bench/BENCH_providers.json:
# per-spec upload-transaction throughput + one matrix sweep cell).
cargo bench --offline -p bench --bench providers
test -s crates/bench/BENCH_providers.json

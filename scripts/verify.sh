#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test from a clean checkout with an empty registry cache (all
# dependencies are in-tree path dependencies; see tests/hermetic.rs).
set -euo pipefail

cd "$(dirname "$0")/.."

# Warnings are errors throughout tier-1 (exported once so every cargo
# invocation below shares one build fingerprint and artifact cache).
export RUSTFLAGS="-D warnings"

cargo fmt --check

# Determinism & hermeticity lint: hard gate, exits non-zero on any
# violation and writes results/simlint_report.json.
cargo run --release --offline -p simlint

cargo build --release --offline
cargo test -q --offline

# Fault-injected smoke run: the whole reproduction pipeline must survive a
# lossy plan (resets, retries, outages) end to end.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -p experiments --bin repro -- \
    table2 --scale 0.01 --faults 7 --out "$smoke_dir"
test -s "$smoke_dir/table2.txt"

# Fault-substrate benchmark (writes crates/bench/BENCH_faults.json).
cargo bench --offline -p bench --bench faults
test -s crates/bench/BENCH_faults.json

# Lint-pass benchmark (writes crates/bench/BENCH_simlint.json).
cargo bench --offline -p bench --bench simlint
test -s crates/bench/BENCH_simlint.json

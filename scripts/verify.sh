#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test from a clean checkout with an empty registry cache (all
# dependencies are in-tree path dependencies; see tests/hermetic.rs).
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

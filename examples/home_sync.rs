//! A two-device household: upload on one device, cloud sync to the other,
//! deduplication, delta encoding, and the LAN Sync Protocol (Secs. 2.1,
//! 5.2) — at byte-level fidelity using the real codecs.
//!
//! ```text
//! cargo run --example home_sync
//! ```

use inside_dropbox::codecs::{apply, compute_delta, lzss, signature};
use inside_dropbox::dns::DnsDirectory;
use inside_dropbox::prelude::*;
use inside_dropbox::system::content::{Content, ContentKind};
use inside_dropbox::system::metadata::{FileId, HostInt, MetadataServer, UserId};
use inside_dropbox::system::storage::ChunkStore;

fn main() {
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut md = MetadataServer::new();
    let mut rng = Rng::new(11);

    // One user, two devices (laptop + desktop) sharing the root namespace.
    let user = UserId(1);
    let laptop = HostInt(101);
    let desktop = HostInt(102);
    let root = md.register_host(user, laptop);
    md.register_host(user, desktop);
    println!("household: laptop={laptop:?} desktop={desktop:?} root namespace={root:?}");

    // --- 1. The laptop saves a 200 kB text document -----------------------
    let v0 = Content::new(0xBEEF, 200_000, ContentKind::Text);
    let bytes_v0 = v0.materialize();
    let compressed = lzss::compress(&bytes_v0);
    println!(
        "\n[laptop] new file: {} raw -> {} compressed ({:.0}% ratio)",
        bytes_v0.len(),
        compressed.len(),
        100.0 * compressed.len() as f64 / bytes_v0.len() as f64
    );

    let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), laptop.0);
    let work: Vec<ChunkWork> = v0
        .chunk_ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| ChunkWork {
            id,
            wire_bytes: compressed.len() as u64,
            raw_bytes: v0.chunk_size(i as u32),
        })
        .collect();
    let flows = engine.upload_transaction(&work, 0, &mut rng, None, SimTime::EPOCH);
    println!(
        "[laptop] sync transaction: {} flows ({} control, {} storage)",
        flows.len(),
        flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Control))
            .count(),
        flows
            .iter()
            .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
            .count(),
    );
    md.namespace_mut(root)
        .expect("root exists")
        .commit(FileId(1), v0, v0.chunk_ids());

    // --- 2. The desktop logs in: incremental list + retrieve --------------
    let updates = md.namespace(root).expect("root").updates_since(0);
    println!(
        "\n[desktop] list(cursor=0) -> {} update(s), file {:?}, {} chunk(s)",
        updates.len(),
        updates[0].file,
        updates[0].chunk_ids.len()
    );
    // Same LAN and the laptop is on-line: the LAN Sync Protocol serves the
    // chunks without touching the WAN (Sec. 5.2).
    println!("[desktop] laptop on-line on the same LAN -> LAN Sync, no WAN flow");

    // --- 3. The desktop edits the file; delta encoding ---------------------
    let mut bytes_v1 = bytes_v0.clone();
    for b in &mut bytes_v1[120_000..123_000] {
        *b = b.wrapping_add(1);
    }
    let sig = signature(&bytes_v0, 2048);
    let delta = compute_delta(&sig, &bytes_v1);
    println!(
        "\n[desktop] edit of 3 kB: delta = {} bytes on the wire instead of {} \
         ({} copied, {} literal)",
        delta.wire_size(),
        bytes_v1.len(),
        delta.copied_bytes(),
        delta.literal_bytes()
    );
    let rebuilt = apply(&bytes_v0, &delta).expect("patch applies");
    assert_eq!(rebuilt, bytes_v1, "delta round-trips");
    println!("[laptop] patch applied, contents verified identical");

    // --- 4. A third device of another user adds the same file -------------
    // (global deduplication: the storage already holds those chunks).
    let stranger = HostInt(999);
    md.register_host(UserId(2), stranger);
    let mut other_engine = SyncEngine::new(&dns, &store, SyncConfig::default(), stranger.0);
    let flows = other_engine.upload_transaction(&work, 0, &mut rng, None, SimTime::EPOCH);
    let storage_flows = flows
        .iter()
        .filter(|f| matches!(f.truth, FlowTruth::Store { .. }))
        .count();
    let stats = store.stats();
    println!(
        "\n[stranger] same content uploaded again: {storage_flows} storage flows \
         (deduplicated), {} dedup hits, {} bytes saved",
        stats.dedup_hits, stats.dedup_bytes
    );
    println!(
        "\nchunk store: {} chunks / {} bytes held",
        stats.chunks, stats.bytes
    );
}

//! Protocol testbed: dissect one commit exactly as the paper's Sec. 2 /
//! Fig. 1 / Fig. 19 do — protocol ladder, packet ladder, monitor view —
//! and write the packets to a standard `.pcap` file for Wireshark.
//!
//! ```text
//! cargo run --example protocol_trace
//! ```

use inside_dropbox::dns::DnsDirectory;
use inside_dropbox::monitor::Monitor;
use inside_dropbox::net::tls;
use inside_dropbox::prelude::*;
use inside_dropbox::system::protocol::{ProtocolTrace, Sender};
use inside_dropbox::system::storage::ChunkStore;
use inside_dropbox::trace::pcap::PcapWriter;
use inside_dropbox::trace::{Endpoint, FlowKey, Ipv4};

fn main() {
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut engine = SyncEngine::new(&dns, &store, SyncConfig::default(), 1);
    let mut rng = Rng::new(7);

    // --- Fig. 1: the message ladder of a 2-chunk commit ------------------
    let mut trace = ProtocolTrace::new();
    trace.record(
        SimTime::EPOCH,
        Sender::Client,
        inside_dropbox::system::protocol::Command::RegisterHost,
    );
    trace.record(
        SimTime::EPOCH,
        Sender::Client,
        inside_dropbox::system::protocol::Command::List,
    );
    let chunks: Vec<ChunkWork> = (0..2)
        .map(|i| ChunkWork {
            id: inside_dropbox::system::content::ChunkId(100 + i),
            wire_bytes: 80_000,
            raw_bytes: 120_000,
        })
        .collect();
    let flows = engine.upload_transaction(&chunks, 0, &mut rng, Some(&mut trace), SimTime::EPOCH);
    println!("=== protocol ladder (Fig. 1) ===\n{trace}");

    // --- Fig. 19: the packet ladder of the storage flow ------------------
    let storage_spec = flows
        .iter()
        .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
        .expect("a storage flow");
    println!(
        "storage flow to {} ({} messages)",
        storage_spec.server_name,
        storage_spec.dialogue.messages.len()
    );

    let key = FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(
            dns.resolve(&storage_spec.server_name).expect("resolves"),
            storage_spec.port,
        ),
    );
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(8),
        outer_rtt: SimDuration::from_millis(92),
        jitter: 0.0,
        loss_up: 0.0,
        loss_down: 0.0,
        up_rate: None,
        down_rate: None,
    };
    let mut packets = Vec::new();
    let summary = simulate_connection(
        SimTime::from_secs(1),
        key,
        &storage_spec.dialogue,
        &path,
        &TcpParams::era_2012_v1(),
        &mut Rng::new(3),
        &mut packets,
    );
    println!("\n=== packet ladder (Fig. 19 style) ===");
    for p in &packets {
        let dir = if p.src == key.client {
            "client ->"
        } else {
            "<- server"
        };
        println!(
            "{:>16}  {dir}  {:?} len={}",
            format!("{}", p.ts),
            p.flags,
            p.payload_len
        );
    }
    println!(
        "\nhandshake done at {}, last packet {}, {} retransmissions",
        summary.established,
        summary.last_packet,
        summary.rtx_up + summary.rtx_down
    );

    // SSL handshake byte check against Appendix A.2.
    println!(
        "client TLS handshake bytes: {} (paper: 294), server: {} (paper: 4103)",
        tls::client_overhead(),
        tls::server_overhead()
    );

    // --- The monitor's view ----------------------------------------------
    let mut monitor = Monitor::new(true);
    monitor.observe_dns(&storage_spec.server_name, key.server.ip);
    let record = monitor.process_flow(&packets).expect("flow record");
    println!("\n=== Tstat view ===");
    println!("server name   : {:?}", record.server_name());
    println!(
        "bytes         : {} up / {} down",
        record.up.bytes, record.down.bytes
    );
    println!(
        "PSH segments  : {} up / {} down",
        record.up.psh_segments, record.down.psh_segments
    );
    println!(
        "estimated chunks (Appendix A.3): {}  (ground truth: 2)",
        inside_dropbox::analysis::chunks::estimate_chunks(&record)
    );
    println!("min RTT       : {:?} ms", record.min_rtt_ms);

    // --- pcap export ------------------------------------------------------
    let file = std::fs::File::create("protocol_trace.pcap").expect("create pcap");
    let mut w = PcapWriter::new(std::io::BufWriter::new(file)).expect("pcap header");
    for p in &packets {
        w.write_packet(p).expect("pcap packet");
    }
    let n = w.packets_written();
    w.finish().expect("flush");
    println!("\nwrote {n} packets to protocol_trace.pcap (open with Wireshark)");
}

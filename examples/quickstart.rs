//! Quickstart: simulate a small home vantage point for one week and run
//! the paper's classification pipeline over the monitor's flow records.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use inside_dropbox::analysis::classify::{dropbox_role, provider_of};
use inside_dropbox::prelude::*;

fn main() {
    // A 1%-scale Home 1 population, 7 capture days.
    let mut config = VantageConfig::paper(VantageKind::Home1, 0.01);
    config.days = 7;
    let out = simulate_vantage(&config, ClientVersion::V1_2_52, 42, &FaultPlan::none());

    let ds = &out.dataset;
    println!("vantage point : {}", ds.name);
    println!("flow records  : {}", ds.flows.len());

    let overview = ds.overview();
    println!(
        "addresses     : {}   total volume: {:.2} GB",
        overview.ip_addrs,
        overview.volume_bytes as f64 / 1e9
    );

    let totals = ds.dropbox_totals();
    println!(
        "dropbox       : {} flows, {:.2} GB, {} devices",
        totals.flows,
        totals.volume_bytes as f64 / 1e9,
        totals.devices
    );

    // Provider attribution (Sec. 3.3).
    let mut per_provider: std::collections::BTreeMap<Provider, (usize, u64)> =
        std::collections::BTreeMap::new();
    for f in &ds.flows {
        let e = per_provider.entry(provider_of(f)).or_default();
        e.0 += 1;
        e.1 += f.total_bytes();
    }
    println!("\nper-provider:");
    for (p, (flows, bytes)) in &per_provider {
        println!(
            "  {:<12} {:>8} flows  {:>10.3} GB",
            p.label(),
            flows,
            *bytes as f64 / 1e9
        );
    }

    // Dropbox server-role breakdown (Fig. 4).
    println!("\ndropbox server roles (bytes share):");
    for (label, share) in ds.role_breakdown() {
        println!("  {label:<18} {:>6.1}%", share.bytes_frac * 100.0);
    }

    // Storage flow tagging (Appendix A.2).
    let (mut store, mut retrieve) = (0usize, 0usize);
    for f in ds.client_storage_flows() {
        match inside_dropbox::analysis::classify::storage_tag(f) {
            StorageTag::Store => store += 1,
            StorageTag::Retrieve => retrieve += 1,
        }
    }
    println!("\nstorage flows : {store} store / {retrieve} retrieve");
    println!(
        "notifications : {} flows carry cleartext device ids",
        ds.flows
            .iter()
            .filter(|f| dropbox_role(f)
                == Some(inside_dropbox::analysis::classify::DropboxRole::NotifyControl))
            .count()
    );
}

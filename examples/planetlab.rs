//! The Sec. 4.2 active experiments: resolve the Dropbox names from 13
//! countries on 6 continents (PlanetLab-style) and verify the deployment
//! is centralized in one region; then show what that centralization costs
//! each country in handshake latency and single-chunk throughput.
//!
//! ```text
//! cargo run --release --example planetlab
//! ```

use inside_dropbox::analysis::throughput::ThetaModel;
use inside_dropbox::dns::planetlab::{is_centralized, nodes, resolve_worldwide};
use inside_dropbox::dns::resolver::{RotatingAuthority, StubResolver};
use inside_dropbox::dns::DnsDirectory;
use inside_dropbox::prelude::*;

fn main() {
    let dir = DnsDirectory::new();

    // --- 1. Global resolution: identical answers everywhere --------------
    let names = [
        "client-lb.dropbox.com",
        "notify5.dropbox.com",
        "dl-client42.dropbox.com",
        "dl.dropbox.com",
    ];
    println!(
        "resolving {} names from {} countries…",
        names.len(),
        nodes().len()
    );
    for name in names {
        let res = resolve_worldwide(&dir, name);
        let first = res[0].ip;
        let all_same = res.iter().all(|r| r.ip == first);
        println!("  {name:<28} -> {first}   identical everywhere: {all_same}");
    }
    assert!(is_centralized(&dir, &names));
    println!("\n=> same address sets regardless of location: a service centralized");
    println!("   in the U.S. (Sec. 4.2.1), with >half the user base overseas.\n");

    // --- 2. DNS load-balancing: rotation + client TTL caching ------------
    let mut auth = RotatingAuthority::new();
    let mut stub = StubResolver::new();
    println!("client-lb rotation as seen by one client re-querying after TTL expiry:");
    let mut t = SimTime::from_secs(0);
    for i in 0..5 {
        let (ip, fresh) = stub
            .resolve(&mut auth, &dir, "client-lb.dropbox.com", t)
            .expect("resolves");
        println!("  t={:>5}s -> {ip}   (fresh lookup: {fresh})", t.secs());
        t += SimDuration::from_secs(400 * (i + 1));
    }

    // --- 3. What centralization costs per country ------------------------
    println!("\nper-country cost of the single-region deployment (1 chunk, 100 kB):");
    println!(
        "{:<14} {:>10} {:>16} {:>18}",
        "country", "RTT", "TLS handshake", "θ (100 kB)"
    );
    for node in nodes() {
        let theta = ThetaModel::paper(node.rtt_to_us);
        // TCP + TLS = 3 RTTs before the first application byte.
        let handshake_ms = 3.0 * node.rtt_to_us.as_secs_f64() * 1_000.0;
        println!(
            "{:<14} {:>8}ms {:>14.0}ms {:>13.0} kbit/s",
            node.country,
            node.rtt_to_us.millis(),
            handshake_ms,
            theta.theta_bps(100_000) / 1e3
        );
    }
    println!(
        "\n=> the third recommendation of Sec. 4.5: placing storage closer to\n\
         customers improves every country below the U.S. rows above."
    );
}

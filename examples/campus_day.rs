//! A working day at the Campus 2 border router: diurnal usage, RTT
//! structure, and the throughput picture of Sec. 4, on a small population.
//!
//! ```text
//! cargo run --release --example campus_day
//! ```

use inside_dropbox::analysis::chunks::estimate_chunks;
use inside_dropbox::analysis::classify::{dropbox_role, storage_tag, DropboxRole};
use inside_dropbox::analysis::sessions::hourly_profiles;
use inside_dropbox::analysis::throughput::{throughput_bps, ThetaModel};
use inside_dropbox::prelude::*;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() {
    // Five capture days (Mon–Fri live on days 2–6 of the calendar).
    let mut config = VantageConfig::paper(VantageKind::Campus2, 0.015);
    config.days = 7;
    let out = simulate_vantage(&config, ClientVersion::V1_2_52, 1234, &FaultPlan::none());
    let ds = &out.dataset;
    println!("{}: {} flow records", ds.name, ds.flows.len());

    // Hourly activity (Fig. 15 in miniature).
    let p = hourly_profiles(&ds.flows, ds.days);
    let max = p.active.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    println!("\nactive devices by hour (working days):");
    for h in 0..24 {
        println!(
            "  {h:02}:00 {:<40} {:.3}",
            bar(p.active[h] / max, 40),
            p.active[h]
        );
    }

    // RTT split (Fig. 6).
    let mut storage_rtt = Vec::new();
    let mut control_rtt = Vec::new();
    for f in &ds.flows {
        if f.rtt_samples < 10 {
            continue;
        }
        match dropbox_role(f) {
            Some(DropboxRole::ClientStorage) => storage_rtt.extend(f.min_rtt_ms),
            Some(DropboxRole::ClientControl) => control_rtt.extend(f.min_rtt_ms),
            _ => {}
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmin-RTT: storage {:.0} ms ({} flows), control {:.0} ms ({} flows)",
        mean(&storage_rtt),
        storage_rtt.len(),
        mean(&control_rtt),
        control_rtt.len()
    );

    // Throughput vs the slow-start bound (Fig. 9).
    let theta = ThetaModel::paper(SimDuration::from_millis(100));
    let mut rows: Vec<(u64, f64, u32)> = Vec::new();
    for f in ds.client_storage_flows() {
        if storage_tag(f) != StorageTag::Store {
            continue;
        }
        if let Some(thr) = throughput_bps(f) {
            rows.push((
                inside_dropbox::analysis::classify::transfer_size(f),
                thr,
                estimate_chunks(f),
            ));
        }
    }
    rows.sort_by_key(|r| r.0);
    println!("\nstore throughput vs size (sampled) — θ is the slow-start bound:");
    println!(
        "{:>12} {:>14} {:>8} {:>14}",
        "bytes", "throughput", "chunks", "θ(bytes)"
    );
    let step = (rows.len() / 12).max(1);
    for row in rows.iter().step_by(step) {
        println!(
            "{:>12} {:>11.0} kb/s {:>8} {:>11.0} kb/s",
            row.0,
            row.1 / 1e3,
            row.2,
            theta.theta_bps(row.0) / 1e3
        );
    }
    let avg: f64 = rows.iter().map(|r| r.1).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\naverage store throughput: {:.0} kbit/s  (paper Campus 2: 462 kbit/s)",
        avg / 1e3
    );
}

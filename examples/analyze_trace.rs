//! Downstream trace analysis: consume an exported anonymised flow log
//! (the repository's counterpart of the paper's published traces) and
//! recompute the headline analyses — no simulator involved.
//!
//! ```text
//! cargo run --release -p experiments --bin repro -- table3 --scale 0.02 --export-traces
//! cargo run --release --example analyze_trace -- results/traces_home1.jsonl
//! ```
//!
//! Without an argument, the example generates a small capture in memory,
//! round-trips it through the JSONL format, and analyses that.

use inside_dropbox::analysis::chunks::estimate_chunks;
use inside_dropbox::analysis::classify::{
    dropbox_role, provider_of, storage_tag, DropboxRole, Provider, StorageTag,
};
use inside_dropbox::analysis::groups::{aggregate_households, group_of, UserGroup};
use inside_dropbox::analysis::throughput::throughput_bps;
use inside_dropbox::prelude::*;
use inside_dropbox::trace::flowlog;

fn load_or_generate() -> Vec<FlowRecord> {
    if let Some(path) = std::env::args().nth(1) {
        let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("open {path}: {e}"));
        let flows = flowlog::read_jsonl(std::io::BufReader::new(file)).expect("parse flow log");
        println!("loaded {} flows from {path}", flows.len());
        flows
    } else {
        println!("no trace given — generating a small capture and round-tripping it");
        let mut config = VantageConfig::paper(VantageKind::Home1, 0.015);
        config.days = 7;
        let out = simulate_vantage(&config, ClientVersion::V1_2_52, 77, &FaultPlan::none());
        let mut flows = out.dataset.flows;
        flowlog::anonymise_clients(&mut flows);
        let mut buf = Vec::new();
        flowlog::write_jsonl(&mut buf, &flows).expect("serialise");
        flowlog::read_jsonl(std::io::Cursor::new(buf)).expect("reparse")
    }
}

fn main() {
    let flows = load_or_generate();

    // Provider attribution.
    let dropbox: Vec<&FlowRecord> = flows
        .iter()
        .filter(|f| provider_of(f) == Provider::Dropbox)
        .collect();
    println!(
        "\n{} of {} flows are Dropbox ({:.1}% of bytes)",
        dropbox.len(),
        flows.len(),
        100.0 * dropbox.iter().map(|f| f.total_bytes()).sum::<u64>() as f64
            / flows.iter().map(|f| f.total_bytes()).sum::<u64>().max(1) as f64
    );

    // Storage tagging + chunk estimation + throughput.
    let mut store = 0usize;
    let mut retrieve = 0usize;
    let mut chunk_hist = [0usize; 4];
    let mut thr = Vec::new();
    for f in &dropbox {
        if dropbox_role(f) != Some(DropboxRole::ClientStorage) {
            continue;
        }
        match storage_tag(f) {
            StorageTag::Store => store += 1,
            StorageTag::Retrieve => retrieve += 1,
        }
        let c = estimate_chunks(f);
        let bucket = match c {
            0..=1 => 0,
            2..=5 => 1,
            6..=50 => 2,
            _ => 3,
        };
        chunk_hist[bucket] += 1;
        if let Some(x) = throughput_bps(f) {
            thr.push(x);
        }
    }
    println!("storage flows : {store} store / {retrieve} retrieve");
    println!(
        "chunks/flow   : 1:{} 2-5:{} 6-50:{} 51-100:{}",
        chunk_hist[0], chunk_hist[1], chunk_hist[2], chunk_hist[3]
    );
    let avg = thr.iter().sum::<f64>() / thr.len().max(1) as f64;
    println!(
        "avg throughput: {:.0} kbit/s over {} flows",
        avg / 1e3,
        thr.len()
    );

    // User groups on the anonymised addresses.
    let households = aggregate_households(&flows);
    let mut groups: std::collections::BTreeMap<UserGroup, usize> = Default::default();
    for h in households.values() {
        *groups.entry(group_of(h)).or_default() += 1;
    }
    println!("\nhouseholds by group (anonymised addresses):");
    for g in UserGroup::ALL {
        println!(
            "  {:<14} {:>5}",
            g.label(),
            groups.get(&g).copied().unwrap_or(0)
        );
    }
}

//! The sequential-acknowledgment bottleneck (Secs. 4.4–4.5), isolated.
//!
//! Uploads the same 2 MB of data as 1 × 2 MB, 20 × 100 kB and 100 × 20 kB
//! chunks, under both protocol generations, and measures what the probe
//! sees. Reproduces the paper's core performance finding: with v1.2.52's
//! per-chunk acknowledgments, many small chunks crater the throughput —
//! and v1.4.0's bundling wins it back.
//!
//! ```text
//! cargo run --release --example bottleneck_study
//! ```

use inside_dropbox::analysis::throughput::{throughput_bps, ThetaModel};
use inside_dropbox::dns::DnsDirectory;
use inside_dropbox::monitor::Monitor;
use inside_dropbox::prelude::*;
use inside_dropbox::system::content::ChunkId;
use inside_dropbox::system::storage::ChunkStore;
use inside_dropbox::trace::{Endpoint, FlowKey, Ipv4};

fn run_store(version: ClientVersion, n_chunks: u64, chunk_bytes: u64, rtt_ms: u64) -> (f64, f64) {
    let dns = DnsDirectory::new();
    let store = ChunkStore::new();
    let mut engine = SyncEngine::new(
        &dns,
        &store,
        SyncConfig {
            version,
            ..SyncConfig::default()
        },
        99,
    );
    let mut rng = Rng::new(5);
    let chunks: Vec<ChunkWork> = (0..n_chunks)
        .map(|i| ChunkWork {
            id: ChunkId(i),
            wire_bytes: chunk_bytes,
            raw_bytes: chunk_bytes,
        })
        .collect();
    let flows = engine.upload_transaction(&chunks, 0, &mut rng, None, SimTime::EPOCH);
    let spec = flows
        .iter()
        .find(|f| matches!(f.truth, FlowTruth::Store { .. }))
        .expect("storage flow");

    let key = FlowKey::new(
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 40_000),
        Endpoint::new(dns.resolve(&spec.server_name).unwrap(), 443),
    );
    let path = PathParams {
        inner_rtt: SimDuration::from_millis(8),
        outer_rtt: SimDuration::from_millis(rtt_ms - 8),
        jitter: 0.02,
        loss_up: 0.0005,
        loss_down: 0.0005,
        up_rate: None,
        down_rate: None,
    };
    let tcp = match version {
        ClientVersion::V1_2_52 => TcpParams::era_2012_v1(),
        ClientVersion::V1_4_0 => TcpParams::era_2012_v14(),
    };
    let mut packets = Vec::new();
    simulate_connection(
        SimTime::from_secs(1),
        key,
        &spec.dialogue,
        &path,
        &tcp,
        &mut Rng::new(6),
        &mut packets,
    );
    let mut monitor = Monitor::new(true);
    let rec = monitor.process_flow(&packets).expect("record");
    let thr = throughput_bps(&rec).unwrap_or(0.0);
    let dur = inside_dropbox::analysis::throughput::transfer_duration(&rec)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    (thr, dur)
}

fn main() {
    let total = 2_000_000u64;
    let rtt_ms = 100;
    println!("uploading 2 MB over a {rtt_ms} ms path\n");
    println!(
        "{:<22} {:>14} {:>12} {:>14} {:>12}",
        "chunking", "v1.2.52 thr", "duration", "v1.4.0 thr", "duration"
    );
    for (n, label) in [
        (1u64, "1 x 2 MB"),
        (20, "20 x 100 kB"),
        (100, "100 x 20 kB"),
    ] {
        let per = total / n;
        let (t1, d1) = run_store(ClientVersion::V1_2_52, n, per, rtt_ms);
        let (t2, d2) = run_store(ClientVersion::V1_4_0, n, per, rtt_ms);
        println!(
            "{label:<22} {:>11.0} kb/s {:>10.2}s {:>11.0} kb/s {:>10.2}s",
            t1 / 1e3,
            d1,
            t2 / 1e3,
            d2
        );
    }

    // The slow-start bound of Fig. 9 for reference.
    let theta = ThetaModel::paper(SimDuration::from_millis(rtt_ms));
    println!(
        "\nθ bound for a single {:.0} kB transfer: {:.0} kbit/s",
        total as f64 / 1e3,
        theta.theta_bps(total) / 1e3
    );
    println!(
        "θ bound for a 20 kB transfer:        {:.0} kbit/s",
        theta.theta_bps(20_000) / 1e3
    );
    println!(
        "\npaper, Sec. 4.4.2: flows with many chunks suffer one RTT plus the server\n\
         reaction time per chunk; Sec. 4.5.1: bundling recovers most of the loss."
    );
}

//! # inside-dropbox
//!
//! A full reproduction of *Inside Dropbox: Understanding Personal Cloud
//! Storage Services* (Drago et al., IMC 2012) as a Rust workspace: the
//! Dropbox client/server protocol, a segment-level TCP+TLS network model,
//! a Tstat-like passive monitor, the four vantage-point workloads, and the
//! paper's complete analysis methodology.
//!
//! This facade crate re-exports the workspace so applications and the
//! bundled examples can depend on a single crate:
//!
//! ```
//! use inside_dropbox::prelude::*;
//!
//! // Simulate one small vantage point and run the paper's classifier.
//! let mut config = VantageConfig::paper(VantageKind::Home1, 0.01);
//! config.days = 3;
//! let out = simulate_vantage(&config, ClientVersion::V1_2_52, 7, &FaultPlan::none());
//! let dropbox_flows = out
//!     .dataset
//!     .flows
//!     .iter()
//!     .filter(|f| provider_of(f) == Provider::Dropbox)
//!     .count();
//! assert!(dropbox_flows > 0);
//! ```
//!
//! The layer map (see `DESIGN.md` for the full inventory):
//!
//! | layer | crate | re-export |
//! |---|---|---|
//! | analysis (the paper's contribution) | `dropbox-analysis` | [`analysis`] |
//! | passive monitor | `tstat` | [`monitor`] |
//! | workload / vantage points | `workload` | [`scenarios`] |
//! | the Dropbox system model | `dropbox` | [`system`] |
//! | TCP + TLS network model | `tcpmodel` | [`net`] |
//! | DNS substrate | `dnssim` | [`dns`] |
//! | packet/flow records | `nettrace` | [`trace`] |
//! | content codecs | `contenthash` | [`codecs`] |
//! | simulation core | `simcore` | [`sim`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use contenthash as codecs;
pub use dnssim as dns;
pub use dropbox as system;
pub use dropbox_analysis as analysis;
pub use nettrace as trace;
pub use simcore as sim;
pub use tcpmodel as net;
pub use tstat as monitor;
pub use workload as scenarios;

/// The most common imports in one place.
pub mod prelude {
    pub use dropbox::client::{ChunkWork, ClientVersion, SyncConfig, SyncEngine};
    pub use dropbox::{FlowSpec, FlowTruth};
    pub use dropbox_analysis::classify::{
        dropbox_role, provider_of, storage_tag, DropboxRole, Provider, StorageTag,
    };
    pub use dropbox_analysis::Dataset;
    pub use nettrace::{FlowRecord, Packet};
    pub use simcore::{Rng, SimDuration, SimTime};
    pub use tcpmodel::{simulate as simulate_connection, Dialogue, PathParams, TcpParams};
    pub use tstat::Monitor;
    pub use workload::{
        simulate_vantage, FaultPlan, FaultStats, FlowFaults, SimOutput, VantageConfig, VantageKind,
    };
}
